#include "triage/reproducer.hh"

#include <cmath>
#include <cstring>

#include "fuzzer/seed.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::triage
{

namespace
{

constexpr uint32_t reproMagic = 0x54465250; // "TFRP"
constexpr uint16_t reproVersion = 1;

/** Fixed-size portion of the wire format after the magic/version. */
constexpr size_t fixedBytes =
    1 + 4 + 1 + 1 + 1 +     // coreKind, bugs, rv64a, mode, resume
    8 + 8 + 4 +             // stepCapFactor, stepCapSlack, stormLimit
    8 + 4 +                 // fuzzerSeed, bootstrapInstrs
    5 * 8 +                 // layout
    8 + 8 + 8 + 8 + 8 + 4 + // iteration scalars
    1 + 8 + 4 + 8 + 8 + 8 + // mismatch
    8 + 8 + 4;              // commitIndex, detectTime, shard

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace

std::vector<uint8_t>
Reproducer::serialize() const
{
    soc::SnapshotWriter w;
    w.putU32(reproMagic);
    w.putU16(reproVersion);

    w.putU8(static_cast<uint8_t>(coreKind));
    w.putU32(bugsRaw);
    w.putU8(rv64aEnabled ? 1 : 0);
    w.putU8(static_cast<uint8_t>(checkMode));
    w.putU8(resumeTraps ? 1 : 0);
    w.putU64(doubleBits(stepCapFactor));
    w.putU64(stepCapSlack);
    w.putU32(trapStormLimit);

    w.putU64(env.fuzzerSeed);
    w.putU32(env.bootstrapInstrs);
    w.putU64(env.layout.instrBase);
    w.putU64(env.layout.instrSize);
    w.putU64(env.layout.dataBase);
    w.putU64(env.layout.dataSize);
    w.putU64(env.layout.handlerBase);

    w.putU64(iteration.iterationIndex);
    w.putU64(iteration.entryPc);
    w.putU64(iteration.firstBlockPc);
    w.putU64(iteration.codeBoundary);
    w.putU64(iteration.fuzzRegionEnd);
    w.putU32(iteration.generatedInstrs);

    w.putU8(static_cast<uint8_t>(mismatch.kind));
    w.putU64(mismatch.pc);
    w.putU32(mismatch.insn);
    w.putU64(mismatch.dutValue);
    w.putU64(mismatch.refValue);
    w.putU64(mismatch.instrIndex);

    w.putU64(commitIndex);
    w.putU64(doubleBits(detectSimTimeSec));
    w.putU32(shard);

    fuzzer::writeSeedBlocks(w, iteration.blocks);
    return w.takeBuffer();
}

std::optional<Reproducer>
Reproducer::tryDeserialize(const std::vector<uint8_t> &bytes,
                           std::string *error)
{
    auto fail = [&](const char *msg) -> std::optional<Reproducer> {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    soc::SnapshotReader r(bytes);
    if (r.remaining() < 6 + fixedBytes)
        return fail("truncated reproducer header");
    if (r.getU32() != reproMagic)
        return fail("bad reproducer magic");
    if (r.getU16() != reproVersion)
        return fail("unsupported reproducer version");

    Reproducer p;
    // Enum bytes are range-checked here so corrupt input surfaces as
    // a typed error instead of a downstream panic in code that
    // switches over the enum.
    const uint8_t core_kind = r.getU8();
    if (core_kind > static_cast<uint8_t>(core::CoreKind::Boom))
        return fail("bad core kind");
    p.coreKind = static_cast<core::CoreKind>(core_kind);
    p.bugsRaw = r.getU32();
    p.rv64aEnabled = r.getU8() != 0;
    const uint8_t check_mode = r.getU8();
    if (check_mode >
        static_cast<uint8_t>(
            checker::DiffChecker::Mode::EndOfIteration))
        return fail("bad check mode");
    p.checkMode = static_cast<checker::DiffChecker::Mode>(check_mode);
    p.resumeTraps = r.getU8() != 0;
    p.stepCapFactor = bitsDouble(r.getU64());
    p.stepCapSlack = r.getU64();
    p.trapStormLimit = r.getU32();

    p.env.fuzzerSeed = r.getU64();
    p.env.bootstrapInstrs = r.getU32();
    p.env.layout.instrBase = r.getU64();
    p.env.layout.instrSize = r.getU64();
    p.env.layout.dataBase = r.getU64();
    p.env.layout.dataSize = r.getU64();
    p.env.layout.handlerBase = r.getU64();

    p.iteration.iterationIndex = r.getU64();
    p.iteration.entryPc = r.getU64();
    p.iteration.firstBlockPc = r.getU64();
    p.iteration.codeBoundary = r.getU64();
    p.iteration.fuzzRegionEnd = r.getU64();
    p.iteration.generatedInstrs = r.getU32();

    const uint8_t kind = r.getU8();
    if (kind > static_cast<uint8_t>(checker::MismatchKind::MemEffect))
        return fail("bad mismatch kind");
    p.mismatch.kind = static_cast<checker::MismatchKind>(kind);
    p.mismatch.pc = r.getU64();
    p.mismatch.insn = r.getU32();
    p.mismatch.dutValue = r.getU64();
    p.mismatch.refValue = r.getU64();
    p.mismatch.instrIndex = r.getU64();

    p.commitIndex = r.getU64();
    p.detectSimTimeSec = bitsDouble(r.getU64());
    p.shard = r.getU32();

    if (!fuzzer::readSeedBlocks(r, p.iteration.blocks, error))
        return std::nullopt;
    if (!r.exhausted())
        return fail("trailing bytes in serialized reproducer");

    // Cross-field validation: a corrupt record that parses must not
    // be able to drive replay into a huge memory fill or an internal
    // invariant panic — same contract as the seed parser.
    const fuzzer::MemoryLayout &lay = p.env.layout;
    if (!std::isfinite(p.stepCapFactor) || p.stepCapFactor < 0.0 ||
        p.stepCapFactor > 1e6 ||
        p.stepCapSlack > (uint64_t{1} << 32))
        return fail("implausible step cap");
    if (p.env.bootstrapInstrs > (1u << 16))
        return fail("implausible bootstrap length");
    if (lay.instrSize > (1ull << 28) || lay.dataSize > (1ull << 28))
        return fail("implausible segment size");
    if (p.iteration.firstBlockPc !=
        lay.instrBase +
            4ull * fuzzer::TurboFuzzer::preambleCode(p.env).size())
        return fail("fuzz-region start disagrees with preamble");
    uint64_t instrs = 0;
    for (const auto &b : p.iteration.blocks)
        instrs += b.instrCount();
    if (instrs != p.iteration.generatedInstrs)
        return fail("instruction count disagrees with blocks");
    if (p.iteration.codeBoundary !=
            p.iteration.firstBlockPc + 4ull * instrs ||
        p.iteration.codeBoundary > lay.instrBase + lay.instrSize)
        return fail("code boundary disagrees with layout");
    return p;
}

Reproducer
Reproducer::deserialize(const std::vector<uint8_t> &bytes)
{
    std::string error;
    auto p = tryDeserialize(bytes, &error);
    if (!p)
        throw fuzzer::SeedFormatError("reproducer deserialize: " +
                                      error);
    return std::move(*p);
}

} // namespace turbofuzz::triage
