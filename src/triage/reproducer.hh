/**
 * @file
 * Self-contained bug reproducer (triage pipeline input).
 *
 * A Reproducer is captured by the campaign harness at the moment the
 * differential checker reports a mismatch. It packages everything a
 * standalone replay needs — the DUT configuration, the generation
 * environment, the mismatching iteration's (fixed-up) instruction
 * blocks and the observed divergence — into one serializable record.
 * No generator, corpus or campaign state is referenced: replaying a
 * reproducer on another host, days later, re-executes the identical
 * stimulus and must re-derive the identical mismatch (see
 * docs/triage.md for the determinism argument).
 */

#ifndef TURBOFUZZ_TRIAGE_REPRODUCER_HH
#define TURBOFUZZ_TRIAGE_REPRODUCER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "checker/diff_checker.hh"
#include "core/bugs.hh"
#include "fuzzer/turbofuzzer.hh"

namespace turbofuzz::triage
{

/** One captured mismatch with its complete replay context. */
struct Reproducer
{
    // --- DUT / harness configuration --------------------------------
    core::CoreKind coreKind = core::CoreKind::Rocket;
    uint32_t bugsRaw = 0; ///< core::BugSet::raw() of the DUT
    bool rv64aEnabled = true;
    checker::DiffChecker::Mode checkMode =
        checker::DiffChecker::Mode::PerInstruction;
    bool resumeTraps = true; ///< generator installed resume templates
    double stepCapFactor = 1.0;
    uint64_t stepCapSlack = 128;
    uint32_t trapStormLimit = 400;

    // --- generation environment + stimulus --------------------------
    fuzzer::ReplayEnv env;
    fuzzer::IterationInfo iteration;

    // --- observed divergence ----------------------------------------
    checker::Mismatch mismatch{};

    /** Commit index of the mismatch *within* the iteration (the
     *  campaign checker counts across iterations; replay counts from
     *  zero, so this is the invariant both agree on). */
    uint64_t commitIndex = 0;

    /** Shard-local simulated time of the first detection. */
    double detectSimTimeSec = 0.0;

    /** Originating fleet shard (0 for plain campaigns). */
    unsigned shard = 0;

    core::BugSet bugs() const { return core::BugSet::fromRaw(bugsRaw); }

    uint32_t totalInstrs() const { return iteration.generatedInstrs; }

    /** Serialize to a flat byte image ("TFRP" format). */
    std::vector<uint8_t> serialize() const;

    /**
     * Rebuild from serialize() output.
     * @throws fuzzer::SeedFormatError on corrupt/truncated input.
     */
    static Reproducer deserialize(const std::vector<uint8_t> &bytes);

    /** Non-throwing variant; nullopt + @p error on malformed input. */
    static std::optional<Reproducer>
    tryDeserialize(const std::vector<uint8_t> &bytes,
                   std::string *error = nullptr);
};

} // namespace turbofuzz::triage

#endif // TURBOFUZZ_TRIAGE_REPRODUCER_HH
