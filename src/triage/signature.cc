#include "triage/signature.hh"

#include <cstdio>

#include "common/logging.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"

namespace turbofuzz::triage
{

namespace
{

using checker::MismatchKind;

/** Strip a trailing FP precision suffix (".s" / ".d"). */
std::string
stripPrecision(std::string_view mnemonic)
{
    std::string m(mnemonic);
    if (m.size() > 2) {
        const std::string_view tail(m.data() + m.size() - 2, 2);
        if (tail == ".s" || tail == ".d")
            m.resize(m.size() - 2);
    }
    return m;
}

/** Coarse extension class; F and D fold into one FP class. */
std::string
extClass(const isa::InstrDesc &desc)
{
    if (desc.ext == isa::Ext::F || desc.ext == isa::Ext::D)
        return "fp";
    return std::string(isa::extName(desc.ext));
}

/** fclass-style category of an FP value's bit pattern. */
std::string_view
fpValueClass(uint64_t bits, bool is_double)
{
    uint64_t exp, frac;
    if (is_double) {
        exp = (bits >> 52) & 0x7FF;
        frac = bits & ((uint64_t{1} << 52) - 1);
        if (exp == 0x7FF)
            return frac ? "nan" : "inf";
        if (exp == 0)
            return frac ? "sub" : "zero";
        return "norm";
    }
    const uint32_t b = static_cast<uint32_t>(bits);
    exp = (b >> 23) & 0xFF;
    frac = b & ((1u << 23) - 1);
    if (exp == 0xFF)
        return frac ? "nan" : "inf";
    if (exp == 0)
        return frac ? "sub" : "zero";
    return "norm";
}

std::string
hexDetail(const char *prefix, uint64_t value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s:0x%llx", prefix,
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Masked value-delta class of an FRD divergence. */
std::string
frdDeltaClass(uint64_t dut, uint64_t ref, bool is_double)
{
    const uint64_t sign_bit = is_double ? (uint64_t{1} << 63)
                                        : (uint64_t{1} << 31);
    const uint64_t mask =
        is_double ? ~uint64_t{0} : 0xFFFFFFFFull;
    if (((dut ^ ref) & mask) == sign_bit)
        return "sign";
    const std::string_view dc = fpValueClass(dut, is_double);
    const std::string_view rc = fpValueClass(ref, is_double);
    if (dc != rc)
        return "cls:" + std::string(dc) + "-" + std::string(rc);
    return "val";
}

std::string
trapCausePair(uint64_t dut, uint64_t ref)
{
    auto one = [](uint64_t cause) -> std::string {
        if (cause == ~uint64_t{0})
            return "-";
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(cause));
        return buf;
    };
    return "cause:" + one(dut) + "," + one(ref);
}

} // namespace

std::string_view
pcRegionName(PcRegion region)
{
    switch (region) {
      case PcRegion::Preamble: return "preamble";
      case PcRegion::FuzzRegion: return "fuzz";
      case PcRegion::Handler: return "handler";
      case PcRegion::Outside: return "outside";
      default: panic("bad PcRegion");
    }
}

std::string
opcodeClass(uint32_t insn)
{
    const isa::Decoded dec = isa::decode(insn);
    if (!dec.valid)
        return "invalid";
    const isa::InstrDesc &d = *dec.desc;

    if (d.has(isa::FlagBranch))
        return "branch";
    if (d.has(isa::FlagJal) || d.has(isa::FlagJalr))
        return "jump";
    if (d.has(isa::FlagAtomic))
        return d.has(isa::FlagWordOp) ? "amo.w" : "amo.d";
    if (d.has(isa::FlagLoad))
        return "load";
    if (d.has(isa::FlagStore))
        return "store";
    if (d.has(isa::FlagFp))
        return stripPrecision(d.mnemonic);
    if (d.has(isa::FlagCsr))
        return "csr";
    if (d.has(isa::FlagMulDiv))
        return "muldiv";
    if (d.has(isa::FlagSystem))
        return std::string(d.mnemonic);
    return "alu";
}

BugSignature
canonicalize(const checker::Mismatch &mm, const Reproducer *repro)
{
    BugSignature sig;
    sig.kind = mm.kind;
    sig.opClass = opcodeClass(mm.insn);

    const isa::Decoded dec = isa::decode(mm.insn);
    switch (mm.kind) {
      case MismatchKind::TrapBehaviour:
        // Decode-/gating-stage bugs fire across every mnemonic of
        // their class: mask the opcode down to its extension
        // category and key on the (dut, ref) cause pair instead.
        if (dec.valid)
            sig.opClass = dec.desc->has(isa::FlagAtomic)
                              ? sig.opClass
                              : extClass(*dec.desc);
        sig.detail = trapCausePair(mm.dutValue, mm.refValue);
        break;
      case MismatchKind::Fflags:
        sig.detail = hexDetail("flags", mm.dutValue ^ mm.refValue);
        break;
      case MismatchKind::FrdValue:
        if (dec.valid) {
            sig.detail = frdDeltaClass(
                mm.dutValue, mm.refValue,
                dec.desc->has(isa::FlagDouble));
        } else {
            sig.detail = "val";
        }
        // A same-class value error (wrong rounding, dropped guard
        // bits) comes from shared FPU datapath state and fires
        // across every rm-sensitive mnemonic — an op-specific class
        // would shatter one bug (e.g. B1) into a bucket per op.
        if (sig.detail == "val")
            sig.opClass = "fp";
        break;
      case MismatchKind::RdValue:
      case MismatchKind::CsrEffect:
        // CSR bugs are identified by the register they touch, not by
        // which of the six Zicsr mnemonics reached it.
        if (dec.valid && dec.desc->has(isa::FlagCsr))
            sig.detail = hexDetail("csr", dec.ops.csr);
        // Integer-destination FP ops (fcvt.w/l, fmv.x, fcmp): value
        // errors are datapath-wide for the same reason as above.
        else if (dec.valid && dec.desc->has(isa::FlagFp) &&
                 mm.kind == MismatchKind::RdValue)
            sig.opClass = "fp";
        break;
      default:
        break; // NextPc / Minstret / MemEffect: kind + class suffice
    }

    if (repro) {
        const fuzzer::MemoryLayout &lay = repro->env.layout;
        const uint64_t pc = mm.pc;
        if (pc >= lay.handlerBase && pc < lay.handlerBase + 4096)
            sig.region = PcRegion::Handler;
        else if (pc >= repro->iteration.firstBlockPc &&
                 pc < repro->iteration.codeBoundary)
            sig.region = PcRegion::FuzzRegion;
        else if (pc >= repro->iteration.entryPc &&
                 pc < repro->iteration.firstBlockPc)
            sig.region = PcRegion::Preamble;
        else
            sig.region = PcRegion::Outside;
    }
    return sig;
}

std::string
BugSignature::key() const
{
    std::string k(checker::mismatchKindName(kind));
    k += "/";
    k += opClass;
    if (!detail.empty()) {
        k += "/";
        k += detail;
    }
    k += "@";
    k += pcRegionName(region);
    return k;
}

std::string
BugSignature::describe() const
{
    std::string s(checker::mismatchKindName(kind));
    s += " divergence on ";
    s += opClass;
    if (!detail.empty()) {
        s += " (";
        s += detail;
        s += ")";
    }
    s += " in ";
    s += pcRegionName(region);
    return s;
}

} // namespace turbofuzz::triage
