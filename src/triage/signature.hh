/**
 * @file
 * Bug signatures: canonicalizing a mismatch for deduplication.
 *
 * A raw mismatch is noisy — the faulting PC, the exact operand values
 * and even the mnemonic vary between two stimuli that trip the same
 * RTL bug. The signature masks that noise while keeping the fields
 * that separate *different* bugs:
 *
 *  - the MismatchKind (what architectural channel diverged),
 *  - a canonical opcode class of the faulting instruction (derived
 *    from the decoder; precision suffixes are folded for FP ops so
 *    fdiv.s and fdiv.d triggers of the same divider bug coalesce; for
 *    trap-behaviour divergences the extension category is used
 *    because a decode-stage bug fires across every mnemonic of its
 *    class),
 *  - kind-specific masked context: the fflags delta, the FP
 *    value-class transition (sign flip / class change / same-class
 *    value error), the CSR address for Zicsr ops, or the (dut, ref)
 *    trap-cause pair,
 *  - the masked PC region (preamble / fuzzing region / trap handler)
 *    instead of the raw PC.
 *
 * Known limitation (shared with the paper's own catalog, which lists
 * C6 as a re-detection of C3): twin bugs that differ only in FP
 * precision (C2 vs C4) fold into one bucket.
 */

#ifndef TURBOFUZZ_TRIAGE_SIGNATURE_HH
#define TURBOFUZZ_TRIAGE_SIGNATURE_HH

#include <string>

#include "checker/diff_checker.hh"
#include "triage/reproducer.hh"

namespace turbofuzz::triage
{

/** Where in the iteration layout the mismatch PC fell. */
enum class PcRegion : uint8_t
{
    Preamble,
    FuzzRegion,
    Handler,
    Outside,
};

std::string_view pcRegionName(PcRegion region);

/** Canonicalized identity of a divergence. */
struct BugSignature
{
    checker::MismatchKind kind =
        checker::MismatchKind::NextPc;
    std::string opClass; ///< canonical opcode class
    std::string detail;  ///< kind-specific masked context
    PcRegion region = PcRegion::Outside;

    bool operator==(const BugSignature &o) const = default;

    /** Stable bucket key, e.g. "fflags/fdiv/flags:0x8@fuzz". */
    std::string key() const;

    /** Human-readable one-liner for reports. */
    std::string describe() const;
};

/**
 * Canonical opcode class of an instruction word: "branch", "jump",
 * "load", "store", "amo.w", "amo.d", "muldiv", "csr", "alu",
 * "ecall"/"ebreak"/"fence", FP base mnemonics with the precision
 * suffix stripped ("fdiv", "fmul", "fmadd", ...), or "invalid".
 */
std::string opcodeClass(uint32_t insn);

/** Canonicalize @p mm; @p repro (optional) supplies the layout used
 *  for PC-region masking. */
BugSignature canonicalize(const checker::Mismatch &mm,
                          const Reproducer *repro = nullptr);

/** Convenience: canonicalize a reproducer's recorded mismatch. */
inline BugSignature
canonicalize(const Reproducer &r)
{
    return canonicalize(r.mismatch, &r);
}

} // namespace turbofuzz::triage

#endif // TURBOFUZZ_TRIAGE_SIGNATURE_HH
