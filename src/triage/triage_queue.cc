#include "triage/triage_queue.hh"

#include <cstdio>

#include "common/stats.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::triage
{

void
TriageQueue::bindTelemetry(telemetry::MetricRegistry *registry,
                           telemetry::TraceRecorder *recorder)
{
    tel = registry ? telemetry::TriageInstruments::resolve(*registry)
                   : telemetry::TriageInstruments{};
    trace = recorder;
    if (tel.buckets)
        tel.buckets->set(static_cast<int64_t>(list.size()));
}

size_t
TriageQueue::push(Reproducer r)
{
    ++pushed;
    if (tel.reproducers)
        tel.reproducers->add(1);
    const BugSignature sig = canonicalize(r);
    const std::string key = sig.key();

    auto it = byKey.find(key);
    if (it == byKey.end()) {
        BugBucket bucket;
        bucket.signature = sig;
        bucket.hits = 1;
        bucket.firstDetectSimTime = r.detectSimTimeSec;
        bucket.firstShard = r.shard;
        bucket.exemplar = std::move(r);
        list.push_back(std::move(bucket));
        byKey.emplace(key, list.size() - 1);
        if (tel.buckets)
            tel.buckets->set(static_cast<int64_t>(list.size()));
        return list.size() - 1;
    }

    BugBucket &bucket = list[it->second];
    ++bucket.hits;
    if (r.detectSimTimeSec < bucket.firstDetectSimTime) {
        bucket.firstDetectSimTime = r.detectSimTimeSec;
        bucket.firstShard = r.shard;
        bucket.exemplar = std::move(r);
        bucket.minimized = false; // exemplar changed; redo on demand
    }
    return it->second;
}

void
TriageQueue::minimizeAll()
{
    const Minimizer minimizer(minOpts);
    for (BugBucket &bucket : list) {
        if (bucket.minimized)
            continue;
        {
            telemetry::ScopedStage stage(trace, tel.minimizeNs,
                                         "triage.minimize");
            bucket.reduction = minimizer.minimize(bucket.exemplar);
        }
        if (tel.replays)
            tel.replays->add(bucket.reduction.replays);
        bucket.minimized = true;
    }
}

std::vector<TriageRow>
TriageQueue::table() const
{
    std::vector<TriageRow> rows;
    rows.reserve(list.size());
    for (const BugBucket &bucket : list) {
        TriageRow row;
        row.signature = bucket.signature.key();
        row.hits = bucket.hits;
        row.firstDetectSimTime = bucket.firstDetectSimTime;
        row.firstShard = bucket.firstShard;
        if (bucket.minimized) {
            row.originalInstrs = bucket.reduction.originalInstrs;
            row.minimizedInstrs = bucket.reduction.minimizedInstrs;
            row.replays = bucket.reduction.replays;
            row.confirmed = bucket.reduction.confirmed;
        } else {
            row.originalInstrs =
                bucket.exemplar.iteration.generatedInstrs;
            row.minimizedInstrs = row.originalInstrs;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void
TriageQueue::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(pushed);
    out.putU32(static_cast<uint32_t>(list.size()));
    for (const BugBucket &bucket : list) {
        out.putU64(bucket.hits);
        out.putF64(bucket.firstDetectSimTime);
        out.putU32(bucket.firstShard);
        const std::vector<uint8_t> blob = bucket.exemplar.serialize();
        out.putU32(static_cast<uint32_t>(blob.size()));
        out.putBytes(blob.data(), blob.size());
    }
}

bool
TriageQueue::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    try {
        list.clear();
        byKey.clear();
        pushed = in.getU64();
        const uint32_t count = in.getU32();
        for (uint32_t i = 0; i < count; ++i) {
            BugBucket bucket;
            bucket.hits = in.getU64();
            bucket.firstDetectSimTime = in.getF64();
            bucket.firstShard = in.getU32();
            const uint32_t size = in.getU32();
            if (size > in.remaining())
                return fail("bucket exemplar size exceeds buffer");
            std::vector<uint8_t> blob(size);
            in.getBytes(blob.data(), size);
            std::string repro_error;
            auto r = Reproducer::tryDeserialize(blob, &repro_error);
            if (!r)
                return fail("bucket exemplar: " + repro_error);
            bucket.exemplar = std::move(*r);
            // The signature is derived state: recompute from the
            // exemplar (canonicalize is deterministic) rather than
            // trusting serialized bytes.
            bucket.signature = canonicalize(bucket.exemplar);
            const std::string key = bucket.signature.key();
            if (byKey.count(key))
                return fail("duplicate bucket signature '" + key +
                            "'");
            byKey.emplace(key, list.size());
            list.push_back(std::move(bucket));
        }
        if (tel.buckets)
            tel.buckets->set(static_cast<int64_t>(list.size()));
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

void
printTriageTable(const std::vector<TriageRow> &rows)
{
    if (rows.empty()) {
        std::printf("  (no bugs triaged)\n");
        return;
    }
    TablePrinter table({"#", "signature", "hits", "first det (s)",
                        "shard", "instrs", "minimized", "replays"});
    for (size_t i = 0; i < rows.size(); ++i) {
        const TriageRow &r = rows[i];
        table.addRow(
            {TablePrinter::integer(i), r.signature,
             TablePrinter::integer(r.hits),
             TablePrinter::num(r.firstDetectSimTime, 2),
             TablePrinter::integer(r.firstShard),
             TablePrinter::integer(r.originalInstrs),
             // Flag only attempted-but-failed confirmations;
             // replays == 0 means minimization was disabled.
             TablePrinter::integer(r.minimizedInstrs) +
                 (r.replays > 0 && !r.confirmed ? " (unconfirmed)"
                                                : ""),
             TablePrinter::integer(r.replays)});
    }
    table.print();
}

} // namespace turbofuzz::triage
