#include "triage/triage_queue.hh"

#include <cstdio>

#include "common/stats.hh"

namespace turbofuzz::triage
{

size_t
TriageQueue::push(Reproducer r)
{
    ++pushed;
    const BugSignature sig = canonicalize(r);
    const std::string key = sig.key();

    auto it = byKey.find(key);
    if (it == byKey.end()) {
        BugBucket bucket;
        bucket.signature = sig;
        bucket.hits = 1;
        bucket.firstDetectSimTime = r.detectSimTimeSec;
        bucket.firstShard = r.shard;
        bucket.exemplar = std::move(r);
        list.push_back(std::move(bucket));
        byKey.emplace(key, list.size() - 1);
        return list.size() - 1;
    }

    BugBucket &bucket = list[it->second];
    ++bucket.hits;
    if (r.detectSimTimeSec < bucket.firstDetectSimTime) {
        bucket.firstDetectSimTime = r.detectSimTimeSec;
        bucket.firstShard = r.shard;
        bucket.exemplar = std::move(r);
        bucket.minimized = false; // exemplar changed; redo on demand
    }
    return it->second;
}

void
TriageQueue::minimizeAll()
{
    const Minimizer minimizer(minOpts);
    for (BugBucket &bucket : list) {
        if (bucket.minimized)
            continue;
        bucket.reduction = minimizer.minimize(bucket.exemplar);
        bucket.minimized = true;
    }
}

std::vector<TriageRow>
TriageQueue::table() const
{
    std::vector<TriageRow> rows;
    rows.reserve(list.size());
    for (const BugBucket &bucket : list) {
        TriageRow row;
        row.signature = bucket.signature.key();
        row.hits = bucket.hits;
        row.firstDetectSimTime = bucket.firstDetectSimTime;
        row.firstShard = bucket.firstShard;
        if (bucket.minimized) {
            row.originalInstrs = bucket.reduction.originalInstrs;
            row.minimizedInstrs = bucket.reduction.minimizedInstrs;
            row.replays = bucket.reduction.replays;
            row.confirmed = bucket.reduction.confirmed;
        } else {
            row.originalInstrs =
                bucket.exemplar.iteration.generatedInstrs;
            row.minimizedInstrs = row.originalInstrs;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void
printTriageTable(const std::vector<TriageRow> &rows)
{
    if (rows.empty()) {
        std::printf("  (no bugs triaged)\n");
        return;
    }
    TablePrinter table({"#", "signature", "hits", "first det (s)",
                        "shard", "instrs", "minimized", "replays"});
    for (size_t i = 0; i < rows.size(); ++i) {
        const TriageRow &r = rows[i];
        table.addRow(
            {TablePrinter::integer(i), r.signature,
             TablePrinter::integer(r.hits),
             TablePrinter::num(r.firstDetectSimTime, 2),
             TablePrinter::integer(r.firstShard),
             TablePrinter::integer(r.originalInstrs),
             // Flag only attempted-but-failed confirmations;
             // replays == 0 means minimization was disabled.
             TablePrinter::integer(r.minimizedInstrs) +
                 (r.replays > 0 && !r.confirmed ? " (unconfirmed)"
                                                : ""),
             TablePrinter::integer(r.replays)});
    }
    table.print();
}

} // namespace turbofuzz::triage
