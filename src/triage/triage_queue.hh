/**
 * @file
 * The triage queue: signature-based deduplication of reproducers.
 *
 * Campaigns and fleet shards push every captured reproducer here; the
 * queue canonicalizes each mismatch into a BugSignature and groups
 * identical signatures into buckets. A bucket keeps the
 * earliest-detected reproducer as its exemplar plus per-bucket
 * statistics (hit count, first-detection latency, first shard) — the
 * per-bug deliverable TheHuzz/ProcessorFuzz-style evaluations report.
 * minimizeAll() then delta-debugs each exemplar into a minimal
 * reproducer.
 *
 * Push order must be deterministic for bucket numbering to be
 * deterministic; the fleet orchestrator guarantees that by harvesting
 * in fixed shard order at its epoch barriers.
 */

#ifndef TURBOFUZZ_TRIAGE_TRIAGE_QUEUE_HH
#define TURBOFUZZ_TRIAGE_TRIAGE_QUEUE_HH

#include <unordered_map>

#include "telemetry/instruments.hh"
#include "telemetry/trace.hh"
#include "triage/minimizer.hh"
#include "triage/signature.hh"

namespace turbofuzz::triage
{

/** One deduplicated bug: a signature and its supporting evidence. */
struct BugBucket
{
    BugSignature signature;
    uint64_t hits = 0;

    /** Earliest shard-local detection time across all hits. */
    double firstDetectSimTime = 0.0;
    unsigned firstShard = 0;

    /** The earliest-detected reproducer for this signature. */
    Reproducer exemplar;

    /** Set by minimizeAll(). */
    bool minimized = false;
    MinimizeResult reduction;
};

/** One row of the per-bug report table. */
struct TriageRow
{
    std::string signature;
    uint64_t hits = 0;
    double firstDetectSimTime = 0.0;
    unsigned firstShard = 0;
    uint32_t originalInstrs = 0;
    uint32_t minimizedInstrs = 0;
    uint32_t replays = 0;
    bool confirmed = false; ///< exemplar replay confirmed
};

class TriageQueue
{
  public:
    explicit TriageQueue(MinimizeOptions minimize_options = {})
        : minOpts(minimize_options)
    {}

    /**
     * Bind triage instruments (triage.reproducers/replays/
     * minimize_ns counters + triage.buckets gauge) and an optional
     * span sink for minimizeAll(). Null detaches either. Purely
     * observational.
     */
    void bindTelemetry(telemetry::MetricRegistry *registry,
                       telemetry::TraceRecorder *recorder = nullptr);

    /**
     * Bucket @p r by its canonical signature.
     * @return index of the (existing or new) bucket.
     */
    size_t push(Reproducer r);

    /** Delta-debug every bucket's exemplar (bounded per bucket by
     *  the queue's MinimizeOptions). Idempotent. */
    void minimizeAll();

    const std::vector<BugBucket> &buckets() const { return list; }
    size_t bucketCount() const { return list.size(); }
    uint64_t reproducersSeen() const { return pushed; }

    /** Per-bug rows, in first-detection (push) order. */
    std::vector<TriageRow> table() const;

    /**
     * Checkpoint support: serialize the deduplicated buckets (bucket
     * order, hit counts, detection metadata, exemplar bytes). Only
     * pre-minimization state is saved — checkpoints are written at
     * epoch barriers and minimizeAll() runs after the final epoch,
     * so a resumed queue minimizes exactly what an uninterrupted one
     * would.
     */
    void saveState(soc::SnapshotWriter &out) const;

    /** Restore a saveState() image (replaces all buckets).
     *  @return false with @p error set on malformed input. */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    MinimizeOptions minOpts;
    std::vector<BugBucket> list;
    std::unordered_map<std::string, size_t> byKey;
    uint64_t pushed = 0;

    /** Resolved instruments (all null until bindTelemetry). */
    telemetry::TriageInstruments tel;
    telemetry::TraceRecorder *trace = nullptr;
};

/** Print a per-bug table (fleet summary + bench output). */
void printTriageTable(const std::vector<TriageRow> &rows);

} // namespace turbofuzz::triage

#endif // TURBOFUZZ_TRIAGE_TRIAGE_QUEUE_HH
