/** @file Bench JSON emission tests (string escaping correctness). */

#include <gtest/gtest.h>

#include "bench_util.hh"

namespace turbofuzz::bench
{
namespace
{

TEST(JsonResult, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(JsonResult::escape("plain"), "plain");
    EXPECT_EQ(JsonResult::escape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(JsonResult::escape("a\\b"), "a\\\\b");
    // The regression that motivated this: a lone backslash must not
    // produce a dangling escape.
    EXPECT_EQ(JsonResult::escape("\\"), "\\\\");
}

TEST(JsonResult, EscapesControlCharacters)
{
    EXPECT_EQ(JsonResult::escape("a\nb"), "a\\nb");
    EXPECT_EQ(JsonResult::escape("a\tb"), "a\\tb");
    EXPECT_EQ(JsonResult::escape("a\rb"), "a\\rb");
    EXPECT_EQ(JsonResult::escape("a\bb"), "a\\bb");
    EXPECT_EQ(JsonResult::escape("a\fb"), "a\\fb");
    // Other C0 controls become \u00XX instead of being dropped.
    EXPECT_EQ(JsonResult::escape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(JsonResult::escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonResult, PassesHighBytesThrough)
{
    // UTF-8 sequences (e.g. in disassembly or bug names) are legal
    // JSON as-is.
    const std::string utf8 = "caf\xc3\xa9";
    EXPECT_EQ(JsonResult::escape(utf8), utf8);
}

TEST(JsonResult, DocumentContainsEscapedStrings)
{
    JsonResult json("escape_test");
    json.meta("name", std::string("line1\nline2 \"quoted\" a\\b"));
    json.metric("value", 1.5);
    const std::string doc = json.str();
    EXPECT_NE(doc.find("line1\\nline2 \\\"quoted\\\" a\\\\b"),
              std::string::npos);
    // No raw newline inside the emitted string literal.
    EXPECT_EQ(doc.find("line1\nline2"), std::string::npos);
}

} // namespace
} // namespace turbofuzz::bench
