/** @file Differential-checker tests. */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "checker/diff_checker.hh"
#include "isa/encoding.hh"

namespace turbofuzz::checker
{
namespace
{

core::CommitInfo
baseCommit()
{
    core::CommitInfo ci;
    ci.pc = 0x10000000;
    ci.nextPc = 0x10000004;
    ci.insn = 0x00100093; // addi ra, zero, 1
    ci.decodeValid = true;
    ci.rdWritten = true;
    ci.rd = 1;
    ci.rdValue = 1;
    ci.minstretAfter = 10;
    return ci;
}

TEST(DiffChecker, IdenticalCommitsPass)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    const auto a = baseCommit();
    EXPECT_FALSE(chk.compare(a, a).has_value());
    EXPECT_EQ(chk.commitsChecked(), 1u);
}

TEST(DiffChecker, DetectsRdValueDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.rdValue = 0xBAD;
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::RdValue);
    EXPECT_EQ(mm->dutValue, 0xBADu);
    EXPECT_EQ(mm->refValue, 1u);
}

TEST(DiffChecker, DetectsTrapDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    ref.trapped = true;
    ref.trapCause = 2;
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::TrapBehaviour);
}

TEST(DiffChecker, DetectsFflagsDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.fflagsAccrued = 0x8; // DZ
    ref.fflagsAccrued = 0x10; // NV
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::Fflags);
}

TEST(DiffChecker, DetectsNextPcDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.nextPc = 0x20000000;
    ASSERT_TRUE(chk.compare(dut, ref).has_value());
}

TEST(DiffChecker, DetectsMinstretDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.minstretAfter = 9;
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::Minstret);
}

TEST(DiffChecker, KindNamesCoverAllEightKinds)
{
    const std::pair<MismatchKind, std::string_view> expected[] = {
        {MismatchKind::NextPc, "next-pc"},
        {MismatchKind::TrapBehaviour, "trap-behaviour"},
        {MismatchKind::RdValue, "rd-value"},
        {MismatchKind::FrdValue, "frd-value"},
        {MismatchKind::Fflags, "fflags"},
        {MismatchKind::CsrEffect, "csr-effect"},
        {MismatchKind::Minstret, "minstret"},
        {MismatchKind::MemEffect, "mem-effect"},
    };
    // The table is exhaustive: every kind has a distinct name.
    std::set<std::string_view> seen;
    for (const auto &[kind, name] : expected) {
        EXPECT_EQ(mismatchKindName(kind), name);
        seen.insert(mismatchKindName(kind));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(DiffChecker, DescribeCoversAllEightKinds)
{
    for (const MismatchKind kind : {
             MismatchKind::NextPc, MismatchKind::TrapBehaviour,
             MismatchKind::RdValue, MismatchKind::FrdValue,
             MismatchKind::Fflags, MismatchKind::CsrEffect,
             MismatchKind::Minstret, MismatchKind::MemEffect}) {
        Mismatch mm;
        mm.kind = kind;
        mm.pc = 0x10000ABC;
        mm.insn = 0x00100093; // addi ra, zero, 1
        mm.dutValue = 0xDEAD;
        mm.refValue = 0xBEEF;
        mm.instrIndex = 99;
        const std::string desc = mm.describe();
        // Every description names its kind, the disassembled insn,
        // the PC and both values.
        EXPECT_NE(desc.find(mismatchKindName(kind)),
                  std::string::npos);
        EXPECT_NE(desc.find("addi"), std::string::npos);
        EXPECT_NE(desc.find("0x10000abc"), std::string::npos);
        EXPECT_NE(desc.find("0xdead"), std::string::npos);
        EXPECT_NE(desc.find("0xbeef"), std::string::npos);
        EXPECT_NE(desc.find("#99"), std::string::npos);
    }
}

TEST(DiffChecker, DescribeIsReadable)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.rdValue = 2;
    const auto mm = chk.compare(dut, ref);
    const std::string desc = mm->describe();
    EXPECT_NE(desc.find("rd-value"), std::string::npos);
    EXPECT_NE(desc.find("addi"), std::string::npos);
    EXPECT_NE(desc.find("0x10000000"), std::string::npos);
}

/**
 * Batch mode: compareTrace must be bit-identical to the sequential
 * compare loop — same divergent commit, same commit counter — for a
 * divergence of every one of the 8 kinds, at every position in the
 * trace.
 */
TEST(DiffChecker, CompareTraceMatchesSequentialForAllKinds)
{
    // One mutation per mismatch kind, applied to the DUT commit.
    const std::pair<MismatchKind,
                    std::function<void(core::CommitInfo &)>>
        mutations[] = {
            {MismatchKind::NextPc,
             [](core::CommitInfo &c) { c.nextPc = 0x777; }},
            {MismatchKind::TrapBehaviour,
             [](core::CommitInfo &c) {
                 c.trapped = true;
                 c.trapCause = 2;
             }},
            {MismatchKind::RdValue,
             [](core::CommitInfo &c) { c.rdValue ^= 0xF00; }},
            {MismatchKind::FrdValue,
             [](core::CommitInfo &c) {
                 c.frdWritten = true;
                 c.frdValue = 0x3FF0000000000000ull;
             }},
            {MismatchKind::Fflags,
             [](core::CommitInfo &c) { c.fflagsAccrued = 0x10; }},
            {MismatchKind::CsrEffect,
             [](core::CommitInfo &c) {
                 c.csrWritten = true;
                 c.csrNewValue = 0xABC;
             }},
            {MismatchKind::Minstret,
             [](core::CommitInfo &c) { c.minstretAfter += 1; }},
            {MismatchKind::MemEffect,
             [](core::CommitInfo &c) {
                 c.memAccess = true;
                 c.memAddr = 0x5000;
             }},
        };

    for (const auto &[kind, mutate] : mutations) {
        for (const size_t pos : {size_t{0}, size_t{3}, size_t{7}}) {
            std::vector<core::CommitInfo> dut(8), ref(8);
            for (size_t i = 0; i < 8; ++i) {
                auto c = baseCommit();
                c.pc += 4 * i;
                c.minstretAfter = 10 + i;
                if (kind == MismatchKind::MemEffect) {
                    // MemEffect only fires when BOTH sides access.
                    c.memAccess = true;
                    c.memAddr = 0x4000 + 8 * i;
                }
                dut[i] = ref[i] = c;
            }
            mutate(dut[pos]);

            DiffChecker batch(DiffChecker::Mode::PerInstruction);
            DiffChecker seq(DiffChecker::Mode::PerInstruction);
            const auto bm =
                batch.compareTrace(dut.data(), ref.data(), 8);
            std::optional<Mismatch> sm;
            for (size_t i = 0; i < 8 && !sm; ++i)
                sm = seq.compare(dut[i], ref[i]);

            ASSERT_TRUE(bm.has_value())
                << mismatchKindName(kind) << " @" << pos;
            ASSERT_TRUE(sm.has_value());
            EXPECT_EQ(bm->kind, kind);
            EXPECT_EQ(bm->kind, sm->kind);
            EXPECT_EQ(bm->instrIndex, pos);
            EXPECT_EQ(bm->instrIndex, sm->instrIndex);
            EXPECT_EQ(bm->pc, sm->pc);
            EXPECT_EQ(bm->dutValue, sm->dutValue);
            EXPECT_EQ(bm->refValue, sm->refValue);
            // Counter stops at the divergent pair, like the loop.
            EXPECT_EQ(batch.commitsChecked(), seq.commitsChecked());
            EXPECT_EQ(batch.commitsChecked(), pos + 1);
        }
    }
}

TEST(DiffChecker, CompareTraceCleanTraceCountsAllCommits)
{
    std::vector<core::CommitInfo> trace(16, baseCommit());
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    EXPECT_FALSE(
        chk.compareTrace(trace.data(), trace.data(), 16).has_value());
    EXPECT_EQ(chk.commitsChecked(), 16u);
}

/**
 * Trap-window resynchronization: when DUT and REF trap identically on
 * the same commit, both streams redirect to the handler together —
 * the pairwise alignment survives the trap window and the batch diff
 * keeps going without reporting a divergence.
 */
TEST(DiffChecker, CompareTraceResynchronizesAcrossSharedTrap)
{
    std::vector<core::CommitInfo> dut(6), ref(6);
    for (size_t i = 0; i < 6; ++i) {
        auto c = baseCommit();
        c.pc += 4 * i;
        dut[i] = ref[i] = c;
    }
    // Both harts trap at commit 2 with the same cause and resume at
    // the same handler PC.
    for (auto *t : {&dut, &ref}) {
        (*t)[2].trapped = true;
        (*t)[2].trapCause = 2;
        (*t)[2].nextPc = 0x80010000;
        (*t)[3].pc = 0x80010000;
    }
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    EXPECT_FALSE(
        chk.compareTrace(dut.data(), ref.data(), 6).has_value());
    EXPECT_EQ(chk.commitsChecked(), 6u);

    // A cause disagreement inside the window IS the divergence.
    ref[2].trapCause = 5;
    DiffChecker chk2(DiffChecker::Mode::PerInstruction);
    const auto mm = chk2.compareTrace(dut.data(), ref.data(), 6);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::TrapBehaviour);
    EXPECT_EQ(mm->instrIndex, 2u);
}

TEST(DiffChecker, FinalStateCompare)
{
    DiffChecker chk(DiffChecker::Mode::EndOfIteration);
    core::ArchState dut, ref;
    EXPECT_FALSE(chk.compareFinalState(dut, ref).has_value());

    dut.setX(5, 42);
    auto mm = chk.compareFinalState(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::RdValue);

    dut.setX(5, 0);
    dut.setF(3, 0x7FF8000000000000ull);
    mm = chk.compareFinalState(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::FrdValue);
}

TEST(DiffChecker, SnapshotCaptureContainsBothHarts)
{
    soc::Memory dut_mem, ref_mem;
    core::Iss dut(&dut_mem), ref(&ref_mem);
    dut_mem.write64(0x1000, 0xAB);

    Mismatch mm;
    mm.kind = MismatchKind::RdValue;
    mm.pc = 0x10000000;
    mm.insn = 0x13;
    mm.dutValue = 1;
    mm.refValue = 2;
    mm.instrIndex = 7;

    const soc::Snapshot snap =
        captureMismatchSnapshot(mm, dut, ref, 3.5);
    EXPECT_TRUE(snap.hasSection("dut.arch"));
    EXPECT_TRUE(snap.hasSection("ref.arch"));
    EXPECT_TRUE(snap.hasSection("dut.mem"));
    EXPECT_NEAR(snap.captureTime(), 3.5, 1e-9);
    EXPECT_NE(snap.trigger().find("rd-value"), std::string::npos);

    // The captured memory section is loadable and bit-exact.
    soc::Memory restored;
    soc::SnapshotReader r(snap.section("dut.mem"));
    restored.loadState(r);
    EXPECT_EQ(restored.read64(0x1000), 0xABull);
}

} // namespace
} // namespace turbofuzz::checker
