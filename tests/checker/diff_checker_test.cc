/** @file Differential-checker tests. */

#include <gtest/gtest.h>

#include <set>

#include "checker/diff_checker.hh"
#include "isa/encoding.hh"

namespace turbofuzz::checker
{
namespace
{

core::CommitInfo
baseCommit()
{
    core::CommitInfo ci;
    ci.pc = 0x10000000;
    ci.nextPc = 0x10000004;
    ci.insn = 0x00100093; // addi ra, zero, 1
    ci.decodeValid = true;
    ci.rdWritten = true;
    ci.rd = 1;
    ci.rdValue = 1;
    ci.minstretAfter = 10;
    return ci;
}

TEST(DiffChecker, IdenticalCommitsPass)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    const auto a = baseCommit();
    EXPECT_FALSE(chk.compare(a, a).has_value());
    EXPECT_EQ(chk.commitsChecked(), 1u);
}

TEST(DiffChecker, DetectsRdValueDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.rdValue = 0xBAD;
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::RdValue);
    EXPECT_EQ(mm->dutValue, 0xBADu);
    EXPECT_EQ(mm->refValue, 1u);
}

TEST(DiffChecker, DetectsTrapDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    ref.trapped = true;
    ref.trapCause = 2;
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::TrapBehaviour);
}

TEST(DiffChecker, DetectsFflagsDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.fflagsAccrued = 0x8; // DZ
    ref.fflagsAccrued = 0x10; // NV
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::Fflags);
}

TEST(DiffChecker, DetectsNextPcDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.nextPc = 0x20000000;
    ASSERT_TRUE(chk.compare(dut, ref).has_value());
}

TEST(DiffChecker, DetectsMinstretDivergence)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.minstretAfter = 9;
    const auto mm = chk.compare(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::Minstret);
}

TEST(DiffChecker, KindNamesCoverAllEightKinds)
{
    const std::pair<MismatchKind, std::string_view> expected[] = {
        {MismatchKind::NextPc, "next-pc"},
        {MismatchKind::TrapBehaviour, "trap-behaviour"},
        {MismatchKind::RdValue, "rd-value"},
        {MismatchKind::FrdValue, "frd-value"},
        {MismatchKind::Fflags, "fflags"},
        {MismatchKind::CsrEffect, "csr-effect"},
        {MismatchKind::Minstret, "minstret"},
        {MismatchKind::MemEffect, "mem-effect"},
    };
    // The table is exhaustive: every kind has a distinct name.
    std::set<std::string_view> seen;
    for (const auto &[kind, name] : expected) {
        EXPECT_EQ(mismatchKindName(kind), name);
        seen.insert(mismatchKindName(kind));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(DiffChecker, DescribeCoversAllEightKinds)
{
    for (const MismatchKind kind : {
             MismatchKind::NextPc, MismatchKind::TrapBehaviour,
             MismatchKind::RdValue, MismatchKind::FrdValue,
             MismatchKind::Fflags, MismatchKind::CsrEffect,
             MismatchKind::Minstret, MismatchKind::MemEffect}) {
        Mismatch mm;
        mm.kind = kind;
        mm.pc = 0x10000ABC;
        mm.insn = 0x00100093; // addi ra, zero, 1
        mm.dutValue = 0xDEAD;
        mm.refValue = 0xBEEF;
        mm.instrIndex = 99;
        const std::string desc = mm.describe();
        // Every description names its kind, the disassembled insn,
        // the PC and both values.
        EXPECT_NE(desc.find(mismatchKindName(kind)),
                  std::string::npos);
        EXPECT_NE(desc.find("addi"), std::string::npos);
        EXPECT_NE(desc.find("0x10000abc"), std::string::npos);
        EXPECT_NE(desc.find("0xdead"), std::string::npos);
        EXPECT_NE(desc.find("0xbeef"), std::string::npos);
        EXPECT_NE(desc.find("#99"), std::string::npos);
    }
}

TEST(DiffChecker, DescribeIsReadable)
{
    DiffChecker chk(DiffChecker::Mode::PerInstruction);
    auto dut = baseCommit();
    auto ref = baseCommit();
    dut.rdValue = 2;
    const auto mm = chk.compare(dut, ref);
    const std::string desc = mm->describe();
    EXPECT_NE(desc.find("rd-value"), std::string::npos);
    EXPECT_NE(desc.find("addi"), std::string::npos);
    EXPECT_NE(desc.find("0x10000000"), std::string::npos);
}

TEST(DiffChecker, FinalStateCompare)
{
    DiffChecker chk(DiffChecker::Mode::EndOfIteration);
    core::ArchState dut, ref;
    EXPECT_FALSE(chk.compareFinalState(dut, ref).has_value());

    dut.setX(5, 42);
    auto mm = chk.compareFinalState(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::RdValue);

    dut.setX(5, 0);
    dut.setF(3, 0x7FF8000000000000ull);
    mm = chk.compareFinalState(dut, ref);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->kind, MismatchKind::FrdValue);
}

TEST(DiffChecker, SnapshotCaptureContainsBothHarts)
{
    soc::Memory dut_mem, ref_mem;
    core::Iss dut(&dut_mem), ref(&ref_mem);
    dut_mem.write64(0x1000, 0xAB);

    Mismatch mm;
    mm.kind = MismatchKind::RdValue;
    mm.pc = 0x10000000;
    mm.insn = 0x13;
    mm.dutValue = 1;
    mm.refValue = 2;
    mm.instrIndex = 7;

    const soc::Snapshot snap =
        captureMismatchSnapshot(mm, dut, ref, 3.5);
    EXPECT_TRUE(snap.hasSection("dut.arch"));
    EXPECT_TRUE(snap.hasSection("ref.arch"));
    EXPECT_TRUE(snap.hasSection("dut.mem"));
    EXPECT_NEAR(snap.captureTime(), 3.5, 1e-9);
    EXPECT_NE(snap.trigger().find("rd-value"), std::string::npos);

    // The captured memory section is loadable and bit-exact.
    soc::Memory restored;
    soc::SnapshotReader r(snap.section("dut.mem"));
    restored.loadState(r);
    EXPECT_EQ(restored.read64(0x1000), 0xABull);
}

} // namespace
} // namespace turbofuzz::checker
