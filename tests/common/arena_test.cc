/** @file Arena: alignment, chunk reuse, oversized requests. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/arena.hh"

namespace turbofuzz
{
namespace
{

TEST(Arena, AllocationsAreAlignedAndDisjoint)
{
    Arena a(1024);
    auto *p8 = a.allocN<uint8_t>(3);
    auto *p64 = a.allocN<uint64_t>(4);
    auto *p32 = a.allocN<uint32_t>(5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % alignof(uint64_t), 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p32) % alignof(uint32_t), 0u);
    // Write through every pointer; no overlap means all reads agree.
    std::memset(p8, 0xAA, 3);
    for (int i = 0; i < 4; ++i)
        p64[i] = 0x1111111111111111ull * (i + 1);
    for (int i = 0; i < 5; ++i)
        p32[i] = 0x22220000u + i;
    EXPECT_EQ(p8[2], 0xAA);
    EXPECT_EQ(p64[3], 0x4444444444444444ull);
    EXPECT_EQ(p32[0], 0x22220000u);
}

TEST(Arena, SteadyStateHoldsNoNewMemory)
{
    Arena a(1024);
    // Warm up: force several chunks into existence.
    for (int i = 0; i < 8; ++i)
        a.allocN<uint8_t>(600);
    const size_t warm = a.heldBytes();
    EXPECT_GT(warm, 0u);
    // Steady state: same allocation pattern, reset between cycles —
    // the retained chunks must absorb it with zero growth.
    for (int cycle = 0; cycle < 100; ++cycle) {
        a.reset();
        for (int i = 0; i < 8; ++i) {
            auto *p = a.allocN<uint8_t>(600);
            p[599] = static_cast<uint8_t>(cycle);
        }
        EXPECT_EQ(a.heldBytes(), warm) << "cycle " << cycle;
    }
}

TEST(Arena, OversizedRequestGetsDedicatedChunk)
{
    Arena a(1024);
    auto *big = a.allocN<uint8_t>(10000);
    std::memset(big, 0x5A, 10000);
    EXPECT_EQ(big[9999], 0x5A);
    // Follow-up small allocations still work.
    auto *small = a.allocN<uint64_t>(2);
    small[1] = 42;
    EXPECT_EQ(small[1], 42u);

    // After reset, the oversized chunk is reused for the same ask.
    const size_t held = a.heldBytes();
    a.reset();
    auto *big2 = a.allocN<uint8_t>(10000);
    big2[0] = 1;
    EXPECT_EQ(a.heldBytes(), held);
}

TEST(Arena, MixedSizesAfterResetDoNotLoop)
{
    // Regression: when every retained chunk is smaller than the
    // request, the allocator must mint a new chunk rather than
    // rescan the too-small ones forever.
    Arena a(256);
    a.allocN<uint8_t>(200);
    a.allocN<uint8_t>(200);
    a.reset();
    auto *p = a.allocN<uint8_t>(500); // bigger than every chunk
    std::memset(p, 1, 500);
    EXPECT_EQ(p[499], 1);
}

TEST(Arena, ResetRewindsToFirstChunk)
{
    Arena a(512);
    auto *first = a.allocN<uint8_t>(16);
    a.allocN<uint8_t>(500); // spill into a second chunk
    a.reset();
    auto *again = a.allocN<uint8_t>(16);
    EXPECT_EQ(first, again); // bump restarts at chunk 0
}

} // namespace
} // namespace turbofuzz
