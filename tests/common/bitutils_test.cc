/** @file Unit tests for bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitutils.hh"

namespace turbofuzz
{
namespace
{

TEST(BitUtils, BitsExtract)
{
    EXPECT_EQ(bits(0xDEADBEEF, 31, 16), 0xDEADu);
    EXPECT_EQ(bits(0xDEADBEEF, 15, 0), 0xBEEFu);
    EXPECT_EQ(bits(0xFF, 3, 0), 0xFu);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
    EXPECT_EQ(bits(0b1010, 3, 3), 1u);
}

TEST(BitUtils, SingleBit)
{
    EXPECT_EQ(bit(0x8000000000000000ull, 63), 1u);
    EXPECT_EQ(bit(0x8000000000000000ull, 62), 0u);
    EXPECT_EQ(bit(1, 0), 1u);
}

TEST(BitUtils, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xAB), 0xAB00u);
    EXPECT_EQ(insertBits(0xFFFF, 7, 4, 0), 0xFF0Fu);
    // Field wider than value is masked.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1F), 0xFu);
}

TEST(BitUtils, InsertThenExtractRoundTrip)
{
    for (unsigned lo = 0; lo < 60; lo += 7) {
        const unsigned hi = lo + 4;
        const uint64_t v = insertBits(0x1234567890ABCDEFull, hi, lo, 0x15);
        EXPECT_EQ(bits(v, hi, lo), 0x15u);
    }
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(sext(0xFFF, 12), -1);
    EXPECT_EQ(sext(0x7FF, 12), 0x7FF);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x80000000ull, 32), INT64_C(-2147483648));
    EXPECT_EQ(sext(0, 1), 0);
    EXPECT_EQ(sext(1, 1), -1);
}

TEST(BitUtils, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xFFFu);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(BitUtils, RoundUpAndAlignment)
{
    EXPECT_EQ(roundUp(0, 4), 0u);
    EXPECT_EQ(roundUp(1, 4), 4u);
    EXPECT_EQ(roundUp(4, 4), 4u);
    EXPECT_EQ(roundUp(4097, 4096), 8192u);
    EXPECT_TRUE(isAligned(64, 8));
    EXPECT_FALSE(isAligned(65, 8));
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

} // namespace
} // namespace turbofuzz
