/** @file Unit tests for the VIO-style configuration store. */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace turbofuzz
{
namespace
{

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 42), 42);
    EXPECT_EQ(c.getDouble("missing", 2.5), 2.5);
    EXPECT_TRUE(c.getBool("missing", true));
    EXPECT_EQ(c.getString("missing", "x"), "x");
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, TypedSetGet)
{
    Config c;
    c.setInt("iters", 4000);
    c.setDouble("prob", 0.4375);
    c.setBool("deep", true);
    c.set("name", "turbofuzz");
    EXPECT_EQ(c.getInt("iters", 0), 4000);
    EXPECT_DOUBLE_EQ(c.getDouble("prob", 0), 0.4375);
    EXPECT_TRUE(c.getBool("deep", false));
    EXPECT_EQ(c.getString("name", ""), "turbofuzz");
    EXPECT_TRUE(c.has("iters"));
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *v : {"true", "1", "yes", "on"}) {
        c.set("k", v);
        EXPECT_TRUE(c.getBool("k", false)) << v;
    }
    for (const char *v : {"false", "0", "no", "off"}) {
        c.set("k", v);
        EXPECT_FALSE(c.getBool("k", true)) << v;
    }
}

TEST(Config, HexIntegers)
{
    Config c;
    c.set("addr", "0x80000000");
    EXPECT_EQ(c.getInt("addr", 0), 0x80000000ll);
}

TEST(Config, ParseArgs)
{
    Config c;
    const char *argv[] = {"prog", "--seed=7", "--mode=deep",
                          "--ratio=0.75"};
    const int n =
        c.parseArgs(4, const_cast<char **>(argv));
    EXPECT_EQ(n, 3);
    EXPECT_EQ(c.getInt("seed", 0), 7);
    EXPECT_EQ(c.getString("mode", ""), "deep");
    EXPECT_DOUBLE_EQ(c.getDouble("ratio", 0), 0.75);
}

TEST(Config, ParseArgsRejectsBadForms)
{
    Config c;
    const char *bad1[] = {"prog", "seed=7"};
    EXPECT_EXIT(c.parseArgs(2, const_cast<char **>(bad1)),
                testing::ExitedWithCode(1), "unrecognized argument");
    const char *bad2[] = {"prog", "--seed"};
    EXPECT_EXIT(c.parseArgs(2, const_cast<char **>(bad2)),
                testing::ExitedWithCode(1), "missing");
}

TEST(Config, ProbHelper)
{
    Prob p{7, 16};
    EXPECT_DOUBLE_EQ(p.value(), 0.4375);
}

} // namespace
} // namespace turbofuzz
