/** @file Unit tests for the LFSR pseudo-random sources. */

#include <gtest/gtest.h>

#include <set>

#include "common/lfsr.hh"

namespace turbofuzz
{
namespace
{

TEST(GaloisLfsr, NeverReachesZero)
{
    GaloisLfsr lfsr(16, 0xACE1);
    for (int i = 0; i < 100000; ++i)
        ASSERT_NE(lfsr.step(), 0u);
}

TEST(GaloisLfsr, ZeroSeedCoerced)
{
    GaloisLfsr lfsr(16, 0);
    EXPECT_EQ(lfsr.state(), 1u);
}

TEST(GaloisLfsr, FullPeriodWidth8)
{
    // Maximal polynomial: period must be exactly 2^8 - 1.
    GaloisLfsr lfsr(8, 1);
    const uint64_t start = lfsr.state();
    std::set<uint64_t> seen;
    seen.insert(start);
    uint64_t steps = 0;
    for (;;) {
        const uint64_t s = lfsr.step();
        ++steps;
        if (s == start)
            break;
        seen.insert(s);
        ASSERT_LE(steps, 256u);
    }
    EXPECT_EQ(steps, 255u);
    EXPECT_EQ(seen.size(), 255u);
}

TEST(GaloisLfsr, FullPeriodWidth16)
{
    GaloisLfsr lfsr(16, 0xBEEF);
    const uint64_t start = lfsr.state();
    uint64_t steps = 0;
    do {
        lfsr.step();
        ++steps;
        ASSERT_LE(steps, 65536u);
    } while (lfsr.state() != start);
    EXPECT_EQ(steps, 65535u);
}

TEST(GaloisLfsr, StateMaskedToWidth)
{
    GaloisLfsr lfsr(24, ~0ull);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(lfsr.step(), 1ull << 24);
}

TEST(GaloisLfsr, StepNMatchesRepeatedStep)
{
    GaloisLfsr a(32, 12345), b(32, 12345);
    a.stepN(57);
    for (int i = 0; i < 57; ++i)
        b.step();
    EXPECT_EQ(a.state(), b.state());
}

TEST(GaloisLfsr, ReseedRestartsSequence)
{
    GaloisLfsr a(32, 7);
    const uint64_t first = a.step();
    a.stepN(100);
    a.reseed(7);
    EXPECT_EQ(a.step(), first);
}

TEST(GaloisLfsr, UnsupportedWidthDies)
{
    EXPECT_EXIT({ GaloisLfsr l(13, 1); (void)l; },
                testing::ExitedWithCode(1), "unsupported LFSR width");
}

TEST(FibonacciLfsr, BitsAreBalanced)
{
    FibonacciLfsr lfsr(32, 0xDEADBEEF);
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += lfsr.stepBit();
    const double ratio = static_cast<double>(ones) / n;
    EXPECT_NEAR(ratio, 0.5, 0.02);
}

TEST(FibonacciLfsr, StepBitsWidth)
{
    FibonacciLfsr lfsr(64, 42);
    for (int i = 0; i < 100; ++i)
        ASSERT_LT(lfsr.stepBits(12), 1ull << 12);
}

TEST(FibonacciLfsr, WordFastPathMatchesScalarSteps)
{
    // stepBits(64) at width 64 takes the fused word path; it must be
    // bit-exact with 64 scalar stepBit() calls — output word AND
    // internal state — across many seeds and consecutive words.
    const uint64_t seeds[] = {1, 42, ~uint64_t{0},
                              0xDEADBEEFCAFEF00Dull, uint64_t{1} << 63};
    for (uint64_t seed : seeds) {
        FibonacciLfsr fast(64, seed);
        FibonacciLfsr slow(64, seed);
        for (int word = 0; word < 64; ++word) {
            uint64_t expect = 0;
            for (int i = 0; i < 64; ++i)
                expect = (expect << 1) | slow.stepBit();
            ASSERT_EQ(fast.stepBits(64), expect)
                << "seed " << seed << " word " << word;
            ASSERT_EQ(fast.state(), slow.state())
                << "seed " << seed << " word " << word;
        }
    }
}

TEST(FibonacciLfsr, WordFastPathAfterScalarPrefix)
{
    // Misaligned use: some scalar bits, then a full word. The fast
    // path must continue the exact same stream.
    FibonacciLfsr fast(64, 0x1234567890ABCDEFull);
    FibonacciLfsr slow(64, 0x1234567890ABCDEFull);
    fast.stepBits(13);
    for (int i = 0; i < 13; ++i)
        slow.stepBit();
    uint64_t expect = 0;
    for (int i = 0; i < 64; ++i)
        expect = (expect << 1) | slow.stepBit();
    EXPECT_EQ(fast.stepBits(64), expect);
    EXPECT_EQ(fast.state(), slow.state());
}

TEST(FibonacciLfsr, UniqueSeedsGiveUniqueStreams)
{
    FibonacciLfsr a(64, 1), b(64, 2);
    // The data-segment filler relies on distinct per-iteration seeds
    // producing distinct fill patterns.
    EXPECT_NE(a.stepBits(64), b.stepBits(64));
}

} // namespace
} // namespace turbofuzz
