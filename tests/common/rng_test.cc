/** @file Unit tests for the deterministic RNG streams. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace turbofuzz
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsStableAndLabelSensitive)
{
    Rng parent(7);
    Rng c1 = parent.split("corpus");
    Rng c2 = parent.split("corpus");
    Rng c3 = parent.split("mutation");
    EXPECT_EQ(c1.next(), c2.next());
    Rng c1b = parent.split("corpus");
    EXPECT_NE(c1b.next(), c3.next());
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(99);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = r.range(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeCoversAllValues)
{
    Rng r(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = r.between(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= (v == 10);
        saw_hi |= (v == 13);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceZeroAndCertain)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0, 16));
        EXPECT_TRUE(r.chance(16, 16));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(123);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += r.chance(7, 16);
    const double p = static_cast<double>(hits) / trials;
    EXPECT_NEAR(p, 7.0 / 16.0, 0.01);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(77);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, StateRoundTrip)
{
    Rng r(2024);
    r.next();
    const uint64_t s = r.rawState();
    const uint64_t expected = r.next();
    Rng replay(0);
    replay.setRawState(s);
    EXPECT_EQ(replay.next(), expected);
}

TEST(Rng, HashLabelStable)
{
    EXPECT_EQ(hashLabel("abc"), hashLabel("abc"));
    EXPECT_NE(hashLabel("abc"), hashLabel("abd"));
    EXPECT_NE(hashLabel(""), hashLabel("a"));
}

} // namespace
} // namespace turbofuzz
