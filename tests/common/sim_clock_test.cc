/** @file Unit tests for simulated time accounting. */

#include <gtest/gtest.h>

#include "common/sim_clock.hh"

namespace turbofuzz
{
namespace
{

TEST(SimClock, StartsAtZero)
{
    SimClock c;
    EXPECT_EQ(c.now(), 0u);
    EXPECT_EQ(c.seconds(), 0.0);
}

TEST(SimClock, AdvanceAccumulates)
{
    SimClock c;
    c.advance(sim_time::psPerMs);
    c.advance(sim_time::psPerMs);
    EXPECT_DOUBLE_EQ(c.seconds(), 0.002);
}

TEST(SimClock, AdvanceCyclesAt100MHz)
{
    SimClock c;
    // 100 cycles at 100 MHz = 1 microsecond.
    c.advanceCycles(100, 100000000);
    EXPECT_DOUBLE_EQ(c.seconds(), 1e-6);
}

TEST(SimClock, SecondsRoundTrip)
{
    EXPECT_DOUBLE_EQ(sim_time::toSeconds(sim_time::fromSeconds(3.5)),
                     3.5);
    EXPECT_EQ(sim_time::fromSeconds(1.0), sim_time::psPerSec);
}

TEST(SimClock, Reset)
{
    SimClock c;
    c.advance(12345);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

TEST(SimClock, LongCampaignNoOverflow)
{
    // 4 simulated hours (Fig. 11's longest budget) in picoseconds
    // stays far inside uint64_t.
    SimClock c;
    c.advance(sim_time::fromSeconds(4 * 3600.0));
    EXPECT_DOUBLE_EQ(c.seconds(), 14400.0);
}

} // namespace
} // namespace turbofuzz
