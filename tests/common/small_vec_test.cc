/** @file SmallVec: inline storage, heap spill, copy/move semantics. */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/small_vec.hh"

namespace turbofuzz
{
namespace
{

TEST(SmallVec, StaysInlineUpToCapacity)
{
    SmallVec<uint32_t, 4> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), 4u);
    for (uint32_t i = 0; i < 4; ++i)
        v.push_back(i * 10);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v.capacity(), 4u); // no spill yet
    // data() points inside the object itself while inline.
    const auto *lo = reinterpret_cast<const unsigned char *>(&v);
    const auto *hi = lo + sizeof(v);
    const auto *p = reinterpret_cast<const unsigned char *>(v.data());
    EXPECT_TRUE(p >= lo && p < hi);
    for (uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(v[i], i * 10);
}

TEST(SmallVec, SpillsToHeapAndPreservesContents)
{
    SmallVec<uint32_t, 4> v;
    for (uint32_t i = 0; i < 40; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 40u);
    EXPECT_GE(v.capacity(), 40u);
    for (uint32_t i = 0; i < 40; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(SmallVec, CopyAndEquality)
{
    SmallVec<uint32_t, 4> a;
    for (uint32_t i = 0; i < 10; ++i)
        a.push_back(i);
    SmallVec<uint32_t, 4> b = a;
    EXPECT_TRUE(a == b);
    b[3] = 999;
    EXPECT_TRUE(a != b);
    EXPECT_EQ(a[3], 3u); // deep copy

    SmallVec<uint32_t, 4> c;
    c = a;
    EXPECT_TRUE(c == a);
}

TEST(SmallVec, MoveStealsHeapBuffer)
{
    SmallVec<uint32_t, 2> a;
    for (uint32_t i = 0; i < 16; ++i)
        a.push_back(i);
    const uint32_t *buf = a.data();
    SmallVec<uint32_t, 2> b = std::move(a);
    EXPECT_EQ(b.data(), buf); // heap buffer transferred, not copied
    EXPECT_EQ(b.size(), 16u);
    for (uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(b[i], i);
}

TEST(SmallVec, MoveOfInlineContentsCopies)
{
    SmallVec<uint32_t, 8> a;
    a.push_back(7);
    a.push_back(8);
    SmallVec<uint32_t, 8> b = std::move(a);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0], 7u);
    EXPECT_EQ(b[1], 8u);
}

TEST(SmallVec, ResizeAndClear)
{
    SmallVec<uint64_t, 4> v;
    v.resize(6);
    EXPECT_EQ(v.size(), 6u);
    for (size_t i = 0; i < 6; ++i)
        EXPECT_EQ(v[i], 0u); // value-initialized
    v.resize(2);
    EXPECT_EQ(v.size(), 2u);
    v.clear();
    EXPECT_TRUE(v.empty());
}

TEST(SmallVec, EraseShiftsTail)
{
    SmallVec<uint32_t, 4> v;
    v.assign({1, 2, 3, 4, 5});
    v.erase(v.begin() + 1);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 1u);
    EXPECT_EQ(v[1], 3u);
    EXPECT_EQ(v[3], 5u);
    v.erase(v.end() - 1);
    EXPECT_EQ(v.back(), 4u);
}

TEST(SmallVec, AssignReplacesContents)
{
    SmallVec<uint32_t, 4> v;
    for (uint32_t i = 0; i < 20; ++i)
        v.push_back(i);
    v.assign({9, 8});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 9u);
    EXPECT_EQ(v[1], 8u);
}

TEST(SmallVec, PopBackAndFrontBack)
{
    SmallVec<uint32_t, 4> v;
    v.assign({10, 20, 30});
    EXPECT_EQ(v.front(), 10u);
    EXPECT_EQ(v.back(), 30u);
    v.pop_back();
    EXPECT_EQ(v.back(), 20u);
    EXPECT_EQ(v.size(), 2u);
}

} // namespace
} // namespace turbofuzz
