/** @file Unit tests for time series and table formatting. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace turbofuzz
{
namespace
{

TEST(TimeSeries, RecordAndLast)
{
    TimeSeries s("cov");
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.last(), 0.0);
    s.record(0.0, 10.0);
    s.record(1.0, 20.0);
    EXPECT_EQ(s.last(), 20.0);
    EXPECT_EQ(s.samples().size(), 2u);
}

TEST(TimeSeries, TimeToReach)
{
    TimeSeries s;
    s.record(0.0, 0.0);
    s.record(5.0, 100.0);
    s.record(9.0, 250.0);
    EXPECT_EQ(s.timeToReach(100.0), 5.0);
    EXPECT_EQ(s.timeToReach(101.0), 9.0);
    EXPECT_LT(s.timeToReach(10000.0), 0.0);
}

TEST(TimeSeries, ValueAtStepwise)
{
    TimeSeries s;
    s.record(1.0, 5.0);
    s.record(2.0, 8.0);
    EXPECT_EQ(s.valueAt(0.5), 0.0);
    EXPECT_EQ(s.valueAt(1.0), 5.0);
    EXPECT_EQ(s.valueAt(1.5), 5.0);
    EXPECT_EQ(s.valueAt(10.0), 8.0);
}

TEST(TimeSeries, NonMonotonicTimePanics)
{
    TimeSeries s;
    s.record(5.0, 1.0);
    EXPECT_DEATH(s.record(4.0, 2.0), "non-monotonic");
}

TEST(TimeSeries, DecimationKeepsEveryNthPlusLatest)
{
    TimeSeries s("dec");
    s.setDecimation(3);
    for (int i = 0; i < 10; ++i)
        s.record(i, 100.0 + i);

    // Kept: calls 0, 3, 6, 9 — call 9 doubles as the exact tail.
    ASSERT_EQ(s.samples().size(), 4u);
    EXPECT_DOUBLE_EQ(s.samples()[0].timeSec, 0.0);
    EXPECT_DOUBLE_EQ(s.samples()[1].timeSec, 3.0);
    EXPECT_DOUBLE_EQ(s.samples()[2].timeSec, 6.0);
    EXPECT_DOUBLE_EQ(s.samples()[3].timeSec, 9.0);
    EXPECT_DOUBLE_EQ(s.last(), 109.0);

    // One more (call 10, not a multiple of 3): the provisional tail
    // is replaced, keeping last() exact without unbounded growth.
    s.record(10, 110.0);
    ASSERT_EQ(s.samples().size(), 5u);
    EXPECT_DOUBLE_EQ(s.samples()[4].timeSec, 10.0);
    EXPECT_DOUBLE_EQ(s.last(), 110.0);
    s.record(11, 111.0);
    ASSERT_EQ(s.samples().size(), 5u);
    EXPECT_DOUBLE_EQ(s.last(), 111.0);
}

TEST(TimeSeries, DecimationOfOneIsBitIdentical)
{
    TimeSeries plain("plain"), dec("dec");
    dec.setDecimation(1);
    for (int i = 0; i < 50; ++i) {
        plain.record(i * 0.5, i);
        dec.record(i * 0.5, i);
    }
    ASSERT_EQ(plain.samples().size(), dec.samples().size());
    for (size_t i = 0; i < plain.samples().size(); ++i) {
        EXPECT_DOUBLE_EQ(plain.samples()[i].timeSec,
                         dec.samples()[i].timeSec);
        EXPECT_DOUBLE_EQ(plain.samples()[i].value,
                         dec.samples()[i].value);
    }
}

TEST(TimeSeries, DecimationBoundsGrowth)
{
    TimeSeries s("big");
    s.setDecimation(100);
    for (int i = 0; i < 100000; ++i)
        s.record(i, i);
    EXPECT_LE(s.samples().size(), 100000 / 100 + 1);
    EXPECT_DOUBLE_EQ(s.last(), 99999.0);
}

TEST(ThroughputMeter, AccumulatesAndRates)
{
    ThroughputMeter m;
    m.addCommits(4000);
    m.addCommits(1000);
    m.addIterations(5);
    EXPECT_EQ(m.commits(), 5000u);
    EXPECT_EQ(m.iterations(), 5u);
    EXPECT_GE(m.elapsedSec(), 0.0);
    // stop() freezes the clock: both rates derive from ONE elapsed
    // reading, so they are in exact counter proportion.
    m.stop();
    EXPECT_DOUBLE_EQ(m.elapsedSec(), m.elapsedSec());
    const double cps = m.commitsPerSec();
    const double ips = m.itersPerSec();
    EXPECT_GE(cps, 0.0);
    EXPECT_GE(ips, 0.0);
    if (ips > 0.0)
        EXPECT_NEAR(cps / ips, 1000.0, 1e-9);

    m.restart();
    EXPECT_EQ(m.commits(), 0u);
    EXPECT_EQ(m.iterations(), 0u);
}

TEST(TablePrinter, AlignedOutput)
{
    TablePrinter t({"Fuzzer", "Speed"});
    t.addRow({"TurboFuzz", "75.12"});
    t.addRow({"Cascade", "12.80"});
    const std::string s = t.str();
    EXPECT_NE(s.find("TurboFuzz"), std::string::npos);
    EXPECT_NE(s.find("75.12"), std::string::npos);
    // Every data row has the same width as the rule lines.
    const size_t first_nl = s.find('\n');
    const std::string rule = s.substr(0, first_nl);
    size_t pos = 0;
    int lines = 0;
    while (pos < s.size()) {
        const size_t nl = s.find('\n', pos);
        EXPECT_EQ(nl - pos, rule.size());
        pos = nl + 1;
        ++lines;
    }
    EXPECT_EQ(lines, 6); // 3 rules + header + 2 rows
}

TEST(TablePrinter, MismatchedRowPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row has 1 cells");
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::integer(1234567), "1,234,567");
    EXPECT_EQ(TablePrinter::integer(12), "12");
    EXPECT_EQ(TablePrinter::integer(0), "0");
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Geomean, MatchesPaperStyleAggregation)
{
    // Aggregating acceleration ratios like Table II does.
    std::vector<double> ratios = {38.54, 474.08, 571.69};
    const double g = geomean(ratios);
    EXPECT_GT(g, 38.54);
    EXPECT_LT(g, 571.69);
}

} // namespace
} // namespace turbofuzz
