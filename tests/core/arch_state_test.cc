/** @file Architectural-state container tests. */

#include <gtest/gtest.h>

#include "core/arch_state.hh"
#include "isa/csr.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::core
{
namespace
{

TEST(ArchState, X0Hardwired)
{
    ArchState st;
    st.setX(0, 123);
    EXPECT_EQ(st.x(0), 0u);
    st.setX(1, 45);
    EXPECT_EQ(st.x(1), 45u);
}

TEST(ArchState, ResetClearsEverything)
{
    ArchState st;
    st.setX(5, 1);
    st.setF(5, 2);
    st.fflags = 0x1F;
    st.minstret = 99;
    st.reset(0x1000);
    EXPECT_EQ(st.x(5), 0u);
    EXPECT_EQ(st.f(5), 0u);
    EXPECT_EQ(st.fflags, 0u);
    EXPECT_EQ(st.minstret, 0u);
    EXPECT_EQ(st.pc, 0x1000u);
}

TEST(ArchState, FsFieldManipulation)
{
    ArchState st;
    st.setFsField(isa::csr::mstatusFsOff);
    EXPECT_FALSE(st.fpEnabled());
    st.setFsField(isa::csr::mstatusFsDirty);
    EXPECT_TRUE(st.fpEnabled());
    EXPECT_EQ(st.fsField(), isa::csr::mstatusFsDirty);
}

TEST(ArchState, ResetEnablesFpu)
{
    ArchState st;
    st.reset(0);
    EXPECT_TRUE(st.fpEnabled());
}

TEST(ArchState, MisaAdvertisesImafd)
{
    ArchState st;
    EXPECT_TRUE(st.misa & (1 << 0));  // A
    EXPECT_TRUE(st.misa & (1 << 3));  // D
    EXPECT_TRUE(st.misa & (1 << 5));  // F
    EXPECT_TRUE(st.misa & (1 << 8));  // I
    EXPECT_TRUE(st.misa & (1 << 12)); // M
    EXPECT_EQ(st.misa >> 62, 2u);     // MXL=64
}

TEST(ArchState, SnapshotRoundTrip)
{
    ArchState st;
    st.pc = 0x80001234;
    st.setX(7, 0xABCD);
    st.setF(3, 0x123456789ull);
    st.fflags = 0x15;
    st.mcause = 2;
    st.minstret = 424242;
    st.resValid = true;
    st.resAddr = 0x5000;

    soc::SnapshotWriter w;
    st.saveState(w);
    const auto buf = w.buffer();

    ArchState st2;
    soc::SnapshotReader r(buf);
    st2.loadState(r);
    EXPECT_EQ(st2.pc, st.pc);
    EXPECT_EQ(st2.x(7), st.x(7));
    EXPECT_EQ(st2.f(3), st.f(3));
    EXPECT_EQ(st2.fflags, st.fflags);
    EXPECT_EQ(st2.mcause, st.mcause);
    EXPECT_EQ(st2.minstret, st.minstret);
    EXPECT_EQ(st2.resValid, st.resValid);
    EXPECT_EQ(st2.resAddr, st.resAddr);
    EXPECT_TRUE(r.exhausted());
}

} // namespace
} // namespace turbofuzz::core
