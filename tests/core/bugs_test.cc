/**
 * @file Bug-injection tests.
 *
 * For every catalog entry: (a) the buggy DUT diverges from the golden
 * REF on the documented trigger, and (b) it does NOT diverge on a
 * benign stimulus — bugs must be precise, or Table II's time-to-bug
 * measurements would be meaningless.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/fp_ops.hh"
#include "core/iss.hh"
#include "isa/csr.hh"
#include "isa/encoding.hh"

namespace turbofuzz::core
{
namespace
{

using isa::Opcode;
using isa::Operands;
namespace csr = isa::csr;

constexpr uint64_t base = 0x80000000ull;

uint64_t
d2b(double d)
{
    uint64_t b;
    std::memcpy(&b, &d, 8);
    return b;
}

/** Run the same single instruction on DUT(bug) and REF; compare. */
struct DiffRig
{
    explicit DiffRig(BugId bug, bool rv64a = true)
        : dutMem(), refMem(),
          dut(&dutMem,
              [&] {
                  Iss::Options o;
                  o.bugs = BugSet::single(bug);
                  o.rv64aEnabled = rv64a;
                  return o;
              }()),
          ref(&refMem,
              [&] {
                  Iss::Options o;
                  o.rv64aEnabled = rv64a;
                  return o;
              }())
    {
        dut.reset(base);
        ref.reset(base);
        dut.state().mtvec = 0x80010000ull;
        ref.state().mtvec = 0x80010000ull;
    }

    void
    setInsn(Opcode op, const Operands &o)
    {
        const uint32_t w = isa::encode(op, o);
        dutMem.write32(base, w);
        refMem.write32(base, w);
    }

    void
    setF(unsigned reg, uint64_t raw)
    {
        dut.state().setF(reg, raw);
        ref.state().setF(reg, raw);
    }

    void
    setX(unsigned reg, uint64_t v)
    {
        dut.state().setX(reg, v);
        ref.state().setX(reg, v);
    }

    /** Step both; return whether any architectural result diverged. */
    bool
    diverged()
    {
        const CommitInfo cd = dut.step();
        const CommitInfo cr = ref.step();
        if (cd.trapped != cr.trapped)
            return true;
        if (cd.rdWritten != cr.rdWritten || cd.rdValue != cr.rdValue)
            return true;
        if (cd.frdWritten != cr.frdWritten || cd.frdValue != cr.frdValue)
            return true;
        if (cd.fflagsAccrued != cr.fflagsAccrued)
            return true;
        if (cd.minstretAfter != cr.minstretAfter)
            return true;
        return false;
    }

    soc::Memory dutMem, refMem;
    Iss dut, ref;
};

Operands
fpDiv(unsigned rd, unsigned rs1, unsigned rs2, uint8_t rm = csr::rmRNE)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    o.rs1 = static_cast<uint8_t>(rs1);
    o.rs2 = static_cast<uint8_t>(rs2);
    o.rm = rm;
    return o;
}

TEST(BugCatalog, MetadataComplete)
{
    EXPECT_EQ(allBugs().size(),
              static_cast<size_t>(BugId::NumBugs));
    EXPECT_EQ(bugsOf(CoreKind::Cva6).size(), 10u);
    EXPECT_EQ(bugsOf(CoreKind::Boom).size(), 2u);
    EXPECT_EQ(bugsOf(CoreKind::Rocket).size(), 1u);
    EXPECT_EQ(bugInfo(BugId::C3).label, "C3");
    EXPECT_EQ(coreKindName(CoreKind::Boom), "BOOM");
}

TEST(BugSetOps, EnableDisable)
{
    BugSet s;
    EXPECT_TRUE(s.empty());
    s.enable(BugId::C5);
    EXPECT_TRUE(s.has(BugId::C5));
    EXPECT_FALSE(s.has(BugId::C4));
    s.disable(BugId::C5);
    EXPECT_TRUE(s.empty());
}

TEST(BugC1, ZeroOverZeroFlagsWrong)
{
    DiffRig rig(BugId::C1);
    rig.setF(1, fp::boxS(0x00000000)); // +0.0f
    rig.setF(2, fp::boxS(0x00000000));
    rig.setInsn(Opcode::FdivS, fpDiv(3, 1, 2));
    EXPECT_TRUE(rig.diverged()); // DZ instead of NV
}

TEST(BugC1, BenignDivisionUnaffected)
{
    DiffRig rig(BugId::C1);
    rig.setF(1, fp::boxS(0x40400000)); // 3.0f
    rig.setF(2, fp::boxS(0x40000000)); // 2.0f
    rig.setInsn(Opcode::FdivS, fpDiv(3, 1, 2));
    EXPECT_FALSE(rig.diverged());
}

TEST(BugC2, DivByInfinitySpuriousFlags)
{
    DiffRig rig(BugId::C2);
    rig.setF(1, fp::boxS(0x40400000)); // 3.0f
    rig.setF(2, fp::boxS(0x7F800000)); // +inf
    rig.setInsn(Opcode::FdivS, fpDiv(3, 1, 2));
    EXPECT_TRUE(rig.diverged());
}

TEST(BugC2, DoubleDivUnaffected)
{
    DiffRig rig(BugId::C2);
    rig.setF(1, d2b(3.0));
    rig.setF(2, d2b(1.0 / 0.0));
    rig.setInsn(Opcode::FdivD, fpDiv(3, 1, 2));
    EXPECT_FALSE(rig.diverged()); // C2 is single-precision only
}

TEST(BugC3, InvalidNanBoxedOperandHonored)
{
    DiffRig rig(BugId::C3);
    // A raw double pattern in rs1: REF reads canonical NaN, the buggy
    // DUT consumes the low 32 bits as a float.
    rig.setF(1, d2b(8.0));
    rig.setF(2, fp::boxS(0x40000000)); // 2.0f
    rig.setInsn(Opcode::FdivS, fpDiv(3, 1, 2));
    EXPECT_TRUE(rig.diverged());
}

TEST(BugC3, ProperlyBoxedUnaffected)
{
    DiffRig rig(BugId::C3);
    rig.setF(1, fp::boxS(0x41000000)); // 8.0f
    rig.setF(2, fp::boxS(0x40000000));
    rig.setInsn(Opcode::FdivS, fpDiv(3, 1, 2));
    EXPECT_FALSE(rig.diverged());
}

TEST(BugC4, DoubleDivByInfinity)
{
    DiffRig rig(BugId::C4);
    rig.setF(1, d2b(3.0));
    rig.setF(2, d2b(1.0 / 0.0));
    rig.setInsn(Opcode::FdivD, fpDiv(3, 1, 2));
    EXPECT_TRUE(rig.diverged());
}

TEST(BugC5, MulWrongSignUnderRdn)
{
    DiffRig rig(BugId::C5);
    rig.setF(1, d2b(-2.0));
    rig.setF(2, d2b(3.0));
    rig.setInsn(Opcode::FmulD, fpDiv(3, 1, 2, csr::rmRDN));
    EXPECT_TRUE(rig.diverged());
}

TEST(BugC5, RneUnaffected)
{
    DiffRig rig(BugId::C5);
    rig.setF(1, d2b(-2.0));
    rig.setF(2, d2b(3.0));
    rig.setInsn(Opcode::FmulD, fpDiv(3, 1, 2, csr::rmRNE));
    EXPECT_FALSE(rig.diverged());
}

TEST(BugC7, StvalReadMismatch)
{
    DiffRig rig(BugId::C7);
    // Arm the latent state: a trap has recorded stval, and mscratch
    // (the source of the bogus read) holds something else.
    rig.dut.state().stval = 0x1234;
    rig.ref.state().stval = 0x1234;
    rig.dut.state().mscratch = 0x9999;
    rig.ref.state().mscratch = 0x9999;
    Operands o;
    o.rd = 1;
    o.rs1 = 0;
    o.csr = csr::stval;
    rig.setInsn(Opcode::Csrrs, o);
    EXPECT_TRUE(rig.diverged());
}

TEST(BugC8, DoubleAtomicMustTrapButDoesNot)
{
    DiffRig rig(BugId::C8, /*rv64a=*/false);
    rig.setX(1, 0x1000);
    rig.setX(2, 7);
    Operands a;
    a.rd = 3;
    a.rs1 = 1;
    a.rs2 = 2;
    rig.setInsn(Opcode::AmoaddD, a);
    EXPECT_TRUE(rig.diverged()); // REF traps, DUT executes
}

TEST(BugC8, WordAtomicUnaffected)
{
    DiffRig rig(BugId::C8, /*rv64a=*/false);
    rig.setX(1, 0x1000);
    rig.setX(2, 7);
    Operands a;
    a.rd = 3;
    a.rs1 = 1;
    a.rs2 = 2;
    rig.setInsn(Opcode::AmoaddW, a);
    EXPECT_FALSE(rig.diverged());
}

TEST(BugC9, ZeroOverZeroReturnsInfinity)
{
    DiffRig rig(BugId::C9);
    rig.setF(1, fp::boxS(0));
    rig.setF(2, fp::boxS(0));
    rig.setInsn(Opcode::FdivS, fpDiv(3, 1, 2));
    EXPECT_TRUE(rig.diverged());
}

TEST(BugC10, PosZeroOverNormalNegated)
{
    DiffRig rig(BugId::C10);
    rig.setF(1, d2b(0.0));
    rig.setF(2, d2b(4.0));
    rig.setInsn(Opcode::FdivD, fpDiv(3, 1, 2));
    EXPECT_TRUE(rig.diverged()); // -0 instead of +0
}

TEST(BugC10, NegativeDivisorUnaffected)
{
    DiffRig rig(BugId::C10);
    rig.setF(1, d2b(0.0));
    rig.setF(2, d2b(-4.0));
    rig.setInsn(Opcode::FdivD, fpDiv(3, 1, 2));
    EXPECT_FALSE(rig.diverged());
}

TEST(BugB1, RoundingModeIgnored)
{
    DiffRig rig(BugId::B1);
    rig.setF(1, d2b(1.0));
    rig.setF(2, d2b(3.0));
    rig.setInsn(Opcode::FdivD, fpDiv(3, 1, 2, csr::rmRUP));
    EXPECT_TRUE(rig.diverged()); // DUT rounds to nearest instead
}

TEST(BugB1, RneResultsMatch)
{
    DiffRig rig(BugId::B1);
    rig.setF(1, d2b(1.0));
    rig.setF(2, d2b(3.0));
    rig.setInsn(Opcode::FdivD, fpDiv(3, 1, 2, csr::rmRNE));
    EXPECT_FALSE(rig.diverged());
}

TEST(BugB2, InvalidRmDoesNotTrap)
{
    DiffRig rig(BugId::B2);
    rig.setF(1, d2b(1.0));
    rig.setF(2, d2b(3.0));
    rig.setInsn(Opcode::FdivD, fpDiv(3, 1, 2, /*rm=*/5));
    EXPECT_TRUE(rig.diverged()); // REF traps, DUT computes
}

TEST(BugR1, EbreakSkipsMinstret)
{
    DiffRig rig(BugId::R1);
    rig.setInsn(Opcode::Ebreak, {});
    EXPECT_TRUE(rig.diverged());
}

TEST(BugR1, OtherInstructionsCount)
{
    DiffRig rig(BugId::R1);
    Operands o;
    o.rd = 1;
    o.rs1 = 0;
    o.imm = 5;
    rig.setInsn(Opcode::Addi, o);
    EXPECT_FALSE(rig.diverged());
}

/** Property: with no bugs enabled, DUT and REF never diverge. */
class NoBugNoDivergence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(NoBugNoDivergence, RandomInstructionStream)
{
    soc::Memory mem_d, mem_r;
    Iss dut(&mem_d), ref(&mem_r);
    dut.reset(base);
    ref.reset(base);
    dut.state().mtvec = 0x80010000ull;
    ref.state().mtvec = 0x80010000ull;

    // Fill a page with random words; many decode to real instructions.
    uint64_t s = GetParam();
    auto rnd = [&]() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    };
    for (unsigned i = 0; i < 256; ++i) {
        const uint32_t w = static_cast<uint32_t>(rnd());
        mem_d.write32(base + 4 * i, w);
        mem_r.write32(base + 4 * i, w);
    }
    for (unsigned i = 0; i < 200; ++i) {
        const CommitInfo cd = dut.step();
        const CommitInfo cr = ref.step();
        ASSERT_EQ(cd.trapped, cr.trapped) << "step " << i;
        ASSERT_EQ(cd.rdValue, cr.rdValue) << "step " << i;
        ASSERT_EQ(cd.frdValue, cr.frdValue) << "step " << i;
        ASSERT_EQ(cd.fflagsAccrued, cr.fflagsAccrued) << "step " << i;
        ASSERT_EQ(dut.state().pc, ref.state().pc) << "step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoBugNoDivergence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace turbofuzz::core
