/**
 * @file
 * Decode-cache correctness tests: invalidation on writes to fetchable
 * addresses (including self-modifying stimulus) and bit-equivalence
 * of the cached and uncached step paths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/iss.hh"
#include "isa/encoding.hh"

namespace turbofuzz::core
{
namespace
{

using isa::Opcode;
using isa::Operands;

constexpr uint64_t base = 0x80000000ull;

Operands
opsRdRs1Imm(unsigned rd, unsigned rs1, int64_t imm)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    o.rs1 = static_cast<uint8_t>(rs1);
    o.imm = imm;
    return o;
}

/**
 * RAII: pin TURBOFUZZ_DECODE_CACHE for the guard's lifetime (nullptr
 * unsets it, i.e. cache on), restoring the ambient value after — the
 * CI off-leg exports the variable globally, and these tests must
 * control it regardless.
 */
class ScopedDecodeCacheEnv
{
  public:
    explicit ScopedDecodeCacheEnv(const char *value)
    {
        if (const char *old = getenv("TURBOFUZZ_DECODE_CACHE")) {
            saved = old;
            hadOld = true;
        }
        if (value)
            setenv("TURBOFUZZ_DECODE_CACHE", value, 1);
        else
            unsetenv("TURBOFUZZ_DECODE_CACHE");
    }
    ~ScopedDecodeCacheEnv()
    {
        if (hadOld)
            setenv("TURBOFUZZ_DECODE_CACHE", saved.c_str(), 1);
        else
            unsetenv("TURBOFUZZ_DECODE_CACHE");
    }

  private:
    std::string saved;
    bool hadOld = false;
};

TEST(DecodeCache, RepeatedFetchHitsCache)
{
    ScopedDecodeCacheEnv on(nullptr);
    soc::Memory mem;
    // addi x1, x0, 7 ; jal x0, -4 (spin on the addi forever).
    mem.write32(base, isa::encode(Opcode::Addi, opsRdRs1Imm(1, 0, 7)));
    Operands j;
    j.rd = 0;
    j.imm = -4;
    mem.write32(base + 4, isa::encode(Opcode::Jal, j));

    Iss iss(&mem);
    iss.reset(base);
    ASSERT_TRUE(iss.decodeCacheEnabled());
    for (int i = 0; i < 20; ++i)
        iss.step();

    const Iss::DecodeStats &st = iss.decodeStats();
    // Two cold misses, everything after that reuses the cache.
    EXPECT_EQ(st.miss, 2u);
    EXPECT_GE(st.hit, 18u);
    EXPECT_EQ(st.invalidate, 0u);
}

TEST(DecodeCache, ExternalStoreToCachedAddressRedecodes)
{
    ScopedDecodeCacheEnv on(nullptr);
    soc::Memory mem;
    mem.write32(base, isa::encode(Opcode::Addi, opsRdRs1Imm(1, 0, 7)));

    Iss iss(&mem);
    iss.reset(base);
    CommitInfo ci = iss.step();
    ASSERT_TRUE(ci.rdWritten);
    EXPECT_EQ(ci.rdValue, 7u);

    // Overwrite the already-cached word, then execute it again: the
    // cache must notice the write (fetch-epoch protocol) and
    // re-decode rather than replay the stale instruction.
    mem.write32(base, isa::encode(Opcode::Addi, opsRdRs1Imm(1, 0, 9)));
    iss.reset(base);
    ci = iss.step();
    EXPECT_EQ(ci.rdValue, 9u);
    EXPECT_GE(iss.decodeStats().invalidate, 1u);
}

/**
 * Self-modifying regression: a program overwrites an instruction it
 * already executed (and therefore cached), loops back, and must
 * observe its own store.
 */
TEST(DecodeCache, SelfModifyingLoopExecutesNewInstruction)
{
    ScopedDecodeCacheEnv on(nullptr);
    soc::Memory mem;
    unsigned slot = 0;
    auto emit = [&](uint32_t word) { mem.write32(base + 4 * slot++, word); };

    const uint32_t victim_new =
        isa::encode(Opcode::Addi, opsRdRs1Imm(1, 0, 22));

    // 0: auipc x20, 0            x20 = base
    Operands au;
    au.rd = 20;
    au.imm = 0;
    emit(isa::encode(Opcode::Auipc, au));
    // 1: addi x24, x0, 1         loop-once flag
    emit(isa::encode(Opcode::Addi, opsRdRs1Imm(24, 0, 1)));
    // 2: addi x21, x0, 0         iteration counter
    emit(isa::encode(Opcode::Addi, opsRdRs1Imm(21, 0, 0)));
    // 3: LOOP (victim): addi x1, x0, 11
    const unsigned victim_slot = slot;
    emit(isa::encode(Opcode::Addi, opsRdRs1Imm(1, 0, 11)));
    // 4: lw x7, 36(x20)          x7 = stashed replacement word
    emit(isa::encode(Opcode::Lw, opsRdRs1Imm(7, 20, 9 * 4)));
    // 5: sw x7, 12(x20)          overwrite the victim
    Operands sw;
    sw.rs1 = 20;
    sw.rs2 = 7;
    sw.imm = static_cast<int64_t>(victim_slot) * 4;
    emit(isa::encode(Opcode::Sw, sw));
    // 6: addi x21, x21, 1
    emit(isa::encode(Opcode::Addi, opsRdRs1Imm(21, 21, 1)));
    // 7: beq x21, x24, LOOP      taken exactly once (first pass)
    Operands beq;
    beq.rs1 = 21;
    beq.rs2 = 24;
    beq.imm = (static_cast<int64_t>(victim_slot) - 7) * 4;
    emit(isa::encode(Opcode::Beq, beq));
    // 8: addi x31, x0, 99        sentinel
    emit(isa::encode(Opcode::Addi, opsRdRs1Imm(31, 0, 99)));
    // 9: stashed replacement instruction word (data, never executed)
    emit(victim_new);

    Iss iss(&mem);
    iss.reset(base);

    // First pass: slots 0..7; the victim still holds addi x1,x0,11.
    CommitInfo last;
    for (int i = 0; i < 8; ++i)
        last = iss.step();
    EXPECT_TRUE(last.branchTaken);
    EXPECT_EQ(iss.state().x(1), 11u);

    // Second pass: slots 3..7 with the victim REWRITTEN by slot 5's
    // store. The cached decode of slot 3 must be invalidated.
    for (int i = 0; i < 5; ++i)
        last = iss.step();
    EXPECT_FALSE(last.branchTaken);
    EXPECT_EQ(iss.state().x(1), 22u)
        << "stale decode executed: self-modifying store was not "
           "observed by the fetch path";
    EXPECT_GE(iss.decodeStats().invalidate, 1u);

    // Sentinel confirms control flow fell through after pass two.
    last = iss.step();
    EXPECT_EQ(iss.state().x(31), 99u);
}

TEST(DecodeCache, EnvGateForcesCacheOff)
{
    soc::Memory mem;
    mem.write32(base, isa::encode(Opcode::Addi, opsRdRs1Imm(1, 0, 7)));

    ScopedDecodeCacheEnv off("off");
    Iss iss(&mem);
    iss.reset(base);
    EXPECT_FALSE(iss.decodeCacheEnabled());
    for (int i = 0; i < 3; ++i) {
        iss.reset(base);
        iss.step();
    }
    const Iss::DecodeStats &st = iss.decodeStats();
    EXPECT_EQ(st.hit, 0u);
    EXPECT_EQ(st.miss, 0u);
    EXPECT_EQ(st.invalidate, 0u);
}

/** Cached and uncached execution of one program, commit-for-commit. */
TEST(DecodeCache, OnOffTracesBitIdentical)
{
    // A program mixing ALU, memory, branches and self-modification.
    std::vector<uint32_t> words;
    {
        soc::Memory scratch;
        unsigned slot = 0;
        auto emit = [&](uint32_t w) {
            scratch.write32(base + 4 * slot++, w);
            words.push_back(w);
        };
        Operands au;
        au.rd = 20;
        au.imm = 0;
        emit(isa::encode(Opcode::Auipc, au));
        emit(isa::encode(Opcode::Addi, opsRdRs1Imm(24, 0, 2)));
        emit(isa::encode(Opcode::Addi, opsRdRs1Imm(21, 0, 0)));
        emit(isa::encode(Opcode::Addi, opsRdRs1Imm(1, 21, 5)));
        emit(isa::encode(Opcode::Lw, opsRdRs1Imm(7, 20, 0)));
        Operands sw;
        sw.rs1 = 20;
        sw.rs2 = 1;
        sw.imm = 3 * 4;
        emit(isa::encode(Opcode::Sw, sw));
        emit(isa::encode(Opcode::Addi, opsRdRs1Imm(21, 21, 1)));
        Operands blt;
        blt.rs1 = 21;
        blt.rs2 = 24;
        blt.imm = (3 - 7) * 4;
        emit(isa::encode(Opcode::Blt, blt));
        emit(isa::encode(Opcode::Addi, opsRdRs1Imm(31, 0, 1)));
    }

    auto run = [&](bool cached) {
        ScopedDecodeCacheEnv env(cached ? nullptr : "off");
        soc::Memory mem;
        for (size_t i = 0; i < words.size(); ++i)
            mem.write32(base + 4 * i, words[i]);
        Iss iss(&mem);
        EXPECT_EQ(iss.decodeCacheEnabled(), cached);
        iss.reset(base);
        std::vector<CommitInfo> trace;
        for (int i = 0; i < 24; ++i)
            trace.push_back(iss.step());
        return trace;
    };

    const std::vector<CommitInfo> on = run(true);
    const std::vector<CommitInfo> off = run(false);
    ASSERT_EQ(on.size(), off.size());
    for (size_t i = 0; i < on.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(on[i].pc, off[i].pc);
        EXPECT_EQ(on[i].nextPc, off[i].nextPc);
        EXPECT_EQ(on[i].insn, off[i].insn);
        EXPECT_EQ(on[i].op, off[i].op);
        EXPECT_EQ(on[i].rdWritten, off[i].rdWritten);
        EXPECT_EQ(on[i].rdValue, off[i].rdValue);
        EXPECT_EQ(on[i].branchTaken, off[i].branchTaken);
        EXPECT_EQ(on[i].memAccess, off[i].memAccess);
        EXPECT_EQ(on[i].memAddr, off[i].memAddr);
        EXPECT_EQ(on[i].trapped, off[i].trapped);
        EXPECT_EQ(on[i].minstretAfter, off[i].minstretAfter);
    }
}

} // namespace
} // namespace turbofuzz::core
