/** @file FP helper-layer semantics tests. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/fp_ops.hh"
#include "isa/csr.hh"

namespace turbofuzz::core::fp
{
namespace
{

namespace csr = isa::csr;

uint32_t
f32(float f)
{
    uint32_t b;
    std::memcpy(&b, &f, 4);
    return b;
}

uint64_t
f64(double d)
{
    uint64_t b;
    std::memcpy(&b, &d, 8);
    return b;
}

float
toF32(uint64_t boxed)
{
    float f;
    const uint32_t b = static_cast<uint32_t>(boxed);
    std::memcpy(&f, &b, 4);
    return f;
}

double
toF64(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

TEST(FpBoxing, BoxUnboxRoundTrip)
{
    const uint32_t v = f32(1.5f);
    EXPECT_TRUE(isBoxedS(boxS(v)));
    EXPECT_EQ(unboxS(boxS(v)), v);
}

TEST(FpBoxing, ImproperBoxReadsAsCanonicalNan)
{
    // A double bit pattern is not a valid boxed single.
    const uint64_t raw = f64(1.5);
    EXPECT_FALSE(isBoxedS(raw));
    EXPECT_EQ(unboxS(raw), canonicalNanS);
}

TEST(FpClassify, AllClasses)
{
    EXPECT_EQ(classifyS(f32(-INFINITY)), 1u << 0);
    EXPECT_EQ(classifyS(f32(-1.0f)), 1u << 1);
    EXPECT_EQ(classifyS(0x80000001u), 1u << 2); // -subnormal
    EXPECT_EQ(classifyS(0x80000000u), 1u << 3); // -0
    EXPECT_EQ(classifyS(0x00000000u), 1u << 4); // +0
    EXPECT_EQ(classifyS(0x00000001u), 1u << 5); // +subnormal
    EXPECT_EQ(classifyS(f32(2.0f)), 1u << 6);
    EXPECT_EQ(classifyS(f32(INFINITY)), 1u << 7);
    EXPECT_EQ(classifyS(0x7F800001u), 1u << 8); // sNaN
    EXPECT_EQ(classifyS(canonicalNanS), 1u << 9);

    EXPECT_EQ(classifyD(f64(-0.0)), 1u << 3);
    EXPECT_EQ(classifyD(canonicalNanD), 1u << 9);
}

TEST(FpArith, BasicSingle)
{
    const FpResult r =
        arithS(ArithOp::Add, f32(1.5f), f32(2.25f), csr::rmRNE);
    EXPECT_FLOAT_EQ(toF32(r.bits), 3.75f);
    EXPECT_EQ(r.flags, 0u);
    EXPECT_TRUE(isBoxedS(r.bits));
}

TEST(FpArith, DivideByZeroSetsDZ)
{
    const FpResult r =
        arithS(ArithOp::Div, f32(1.0f), f32(0.0f), csr::rmRNE);
    EXPECT_TRUE(std::isinf(toF32(r.bits)));
    EXPECT_EQ(r.flags, csr::flagDZ);
}

TEST(FpArith, ZeroOverZeroSetsNVOnly)
{
    const FpResult r =
        arithS(ArithOp::Div, f32(0.0f), f32(0.0f), csr::rmRNE);
    EXPECT_EQ(static_cast<uint32_t>(r.bits), canonicalNanS);
    EXPECT_EQ(r.flags, csr::flagNV);
}

TEST(FpArith, DivByInfinityIsExactZero)
{
    const FpResult r =
        arithS(ArithOp::Div, f32(3.0f), f32(INFINITY), csr::rmRNE);
    EXPECT_EQ(toF32(r.bits), 0.0f);
    EXPECT_EQ(r.flags, 0u);
}

TEST(FpArith, InexactSetsNX)
{
    const FpResult r =
        arithS(ArithOp::Div, f32(1.0f), f32(3.0f), csr::rmRNE);
    EXPECT_NE(r.flags & csr::flagNX, 0u);
}

TEST(FpArith, OverflowSetsOFNX)
{
    const FpResult r = arithS(ArithOp::Mul, f32(3.0e38f), f32(3.0e38f),
                              csr::rmRNE);
    EXPECT_TRUE(std::isinf(toF32(r.bits)));
    EXPECT_NE(r.flags & csr::flagOF, 0u);
    EXPECT_NE(r.flags & csr::flagNX, 0u);
}

TEST(FpArith, UnderflowSetsUFNX)
{
    const FpResult r = arithD(ArithOp::Mul, f64(1e-300), f64(1e-300),
                              csr::rmRNE);
    EXPECT_NE(r.flags & csr::flagUF, 0u);
    EXPECT_NE(r.flags & csr::flagNX, 0u);
}

TEST(FpArith, RoundingModesDiffer)
{
    // 1/3 rounds differently under RDN and RUP.
    const FpResult dn =
        arithD(ArithOp::Div, f64(1.0), f64(3.0), csr::rmRDN);
    const FpResult up =
        arithD(ArithOp::Div, f64(1.0), f64(3.0), csr::rmRUP);
    EXPECT_LT(toF64(dn.bits), toF64(up.bits));
    // RTZ equals RDN for positive results.
    const FpResult tz =
        arithD(ArithOp::Div, f64(1.0), f64(3.0), csr::rmRTZ);
    EXPECT_EQ(tz.bits, dn.bits);
}

TEST(FpArith, NanResultIsCanonical)
{
    const FpResult r = arithD(ArithOp::Sub, f64(INFINITY),
                              f64(INFINITY), csr::rmRNE);
    EXPECT_EQ(r.bits, canonicalNanD);
    EXPECT_EQ(r.flags, csr::flagNV);
}

TEST(FpArith, SqrtNegativeIsInvalid)
{
    const FpResult r = arithS(ArithOp::Sqrt, f32(-4.0f), 0, csr::rmRNE);
    EXPECT_EQ(static_cast<uint32_t>(r.bits), canonicalNanS);
    EXPECT_EQ(r.flags, csr::flagNV);
}

TEST(FpMinMax, SignedZeroOrdering)
{
    const FpResult mn =
        arithS(ArithOp::Min, f32(-0.0f), f32(0.0f), csr::rmRNE);
    EXPECT_EQ(static_cast<uint32_t>(mn.bits), 0x80000000u);
    const FpResult mx =
        arithS(ArithOp::Max, f32(-0.0f), f32(0.0f), csr::rmRNE);
    EXPECT_EQ(static_cast<uint32_t>(mx.bits), 0x00000000u);
}

TEST(FpMinMax, NanHandling)
{
    // One NaN: return the other operand, quietly for qNaN.
    const FpResult r = arithD(ArithOp::Min, canonicalNanD, f64(2.0),
                              csr::rmRNE);
    EXPECT_EQ(toF64(r.bits), 2.0);
    EXPECT_EQ(r.flags, 0u);
    // Signaling NaN input raises NV.
    const FpResult rs = arithD(ArithOp::Min, 0x7FF0000000000001ull,
                               f64(2.0), csr::rmRNE);
    EXPECT_EQ(toF64(rs.bits), 2.0);
    EXPECT_EQ(rs.flags, csr::flagNV);
    // Both NaN: canonical NaN.
    const FpResult rb = arithD(ArithOp::Max, canonicalNanD,
                               canonicalNanD, csr::rmRNE);
    EXPECT_EQ(rb.bits, canonicalNanD);
}

TEST(FpFma, BasicAndNegations)
{
    // fmadd: 2*3+1 = 7
    FpResult r = fmaD(f64(2.0), f64(3.0), f64(1.0), false, false,
                      csr::rmRNE);
    EXPECT_EQ(toF64(r.bits), 7.0);
    // fmsub: 2*3-1 = 5
    r = fmaD(f64(2.0), f64(3.0), f64(1.0), false, true, csr::rmRNE);
    EXPECT_EQ(toF64(r.bits), 5.0);
    // fnmsub: -(2*3)+1 = -5
    r = fmaD(f64(2.0), f64(3.0), f64(1.0), true, false, csr::rmRNE);
    EXPECT_EQ(toF64(r.bits), -5.0);
    // fnmadd: -(2*3)-1 = -7
    r = fmaD(f64(2.0), f64(3.0), f64(1.0), true, true, csr::rmRNE);
    EXPECT_EQ(toF64(r.bits), -7.0);
}

TEST(FpFma, InfTimesZeroIsInvalid)
{
    const FpResult r = fmaS(f32(INFINITY), f32(0.0f), f32(1.0f), false,
                            false, csr::rmRNE);
    EXPECT_NE(r.flags & csr::flagNV, 0u);
}

TEST(FpCmp, OrderedComparisons)
{
    EXPECT_EQ(cmpD(CmpOp::Lt, f64(1.0), f64(2.0)).bits, 1u);
    EXPECT_EQ(cmpD(CmpOp::Lt, f64(2.0), f64(1.0)).bits, 0u);
    EXPECT_EQ(cmpD(CmpOp::Le, f64(2.0), f64(2.0)).bits, 1u);
    EXPECT_EQ(cmpD(CmpOp::Eq, f64(2.0), f64(2.0)).bits, 1u);
    EXPECT_EQ(cmpD(CmpOp::Eq, f64(-0.0), f64(0.0)).bits, 1u);
}

TEST(FpCmp, NanSignaling)
{
    // feq with qNaN: false, no NV.
    FpResult r = cmpD(CmpOp::Eq, canonicalNanD, f64(1.0));
    EXPECT_EQ(r.bits, 0u);
    EXPECT_EQ(r.flags, 0u);
    // feq with sNaN: NV.
    r = cmpD(CmpOp::Eq, 0x7FF0000000000001ull, f64(1.0));
    EXPECT_EQ(r.flags, csr::flagNV);
    // flt with any NaN: NV.
    r = cmpD(CmpOp::Lt, canonicalNanD, f64(1.0));
    EXPECT_EQ(r.flags, csr::flagNV);
}

TEST(FpCvt, FloatToIntSaturation)
{
    // NaN -> positive saturation + NV.
    FpResult r = cvtSToI(canonicalNanS, true, false, csr::rmRNE);
    EXPECT_EQ(r.bits, 0x7FFFFFFFull);
    EXPECT_EQ(r.flags, csr::flagNV);
    // Large positive -> saturate.
    r = cvtSToI(f32(3e9f), true, false, csr::rmRNE);
    EXPECT_EQ(r.bits, 0x7FFFFFFFull);
    EXPECT_EQ(r.flags, csr::flagNV);
    // Negative to unsigned -> 0 + NV.
    r = cvtSToI(f32(-2.0f), false, true, csr::rmRNE);
    EXPECT_EQ(r.bits, 0u);
    EXPECT_EQ(r.flags, csr::flagNV);
    // -0.4 to unsigned rounds to 0 without NV under RTZ.
    r = cvtSToI(f32(-0.4f), false, true, csr::rmRTZ);
    EXPECT_EQ(r.bits, 0u);
    EXPECT_EQ(r.flags, csr::flagNX);
}

TEST(FpCvt, FloatToIntRounding)
{
    FpResult r = cvtDToI(f64(2.5), true, true, csr::rmRNE);
    EXPECT_EQ(r.bits, 2u); // ties to even
    r = cvtDToI(f64(2.5), true, true, csr::rmRUP);
    EXPECT_EQ(r.bits, 3u);
    r = cvtDToI(f64(-2.5), true, true, csr::rmRDN);
    EXPECT_EQ(r.bits, static_cast<uint64_t>(-3));
    r = cvtDToI(f64(-2.5), true, true, csr::rmRTZ);
    EXPECT_EQ(r.bits, static_cast<uint64_t>(-2));
}

TEST(FpCvt, Wordresult32BitSignExtended)
{
    const FpResult r = cvtDToI(f64(-5.0), true, false, csr::rmRNE);
    EXPECT_EQ(r.bits, static_cast<uint64_t>(-5));
}

TEST(FpCvt, IntToFloatInexact)
{
    // 2^53+1 is not representable in double.
    const uint64_t v = (1ull << 53) + 1;
    const FpResult r = cvtIToD(v, false, true, csr::rmRNE);
    EXPECT_EQ(r.flags, csr::flagNX);
}

TEST(FpCvt, PrecisionConversions)
{
    const FpResult up = cvtSToD(f32(1.5f));
    EXPECT_EQ(toF64(up.bits), 1.5);
    EXPECT_EQ(up.flags, 0u);

    const FpResult down = cvtDToS(f64(1e60), csr::rmRNE);
    EXPECT_TRUE(std::isinf(toF32(down.bits)));
    EXPECT_NE(down.flags & csr::flagOF, 0u);

    const FpResult nan = cvtDToS(canonicalNanD, csr::rmRNE);
    EXPECT_EQ(static_cast<uint32_t>(nan.bits), canonicalNanS);
}

TEST(FpSgnj, AllThreeOps)
{
    const uint32_t pos = f32(2.5f);
    const uint32_t neg = f32(-1.0f);
    EXPECT_EQ(sgnjS(SgnOp::Copy, pos, neg), f32(-2.5f));
    EXPECT_EQ(sgnjS(SgnOp::Negate, pos, pos), f32(-2.5f));
    EXPECT_EQ(sgnjS(SgnOp::XorSign, neg, neg), f32(1.0f));
    EXPECT_EQ(sgnjD(SgnOp::Copy, f64(3.0), f64(-0.0)), f64(-3.0));
}

} // namespace
} // namespace turbofuzz::core::fp
