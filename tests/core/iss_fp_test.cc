/** @file ISS floating-point pipeline tests (gating, rm, fflags). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/fp_ops.hh"
#include "core/iss.hh"
#include "isa/csr.hh"
#include "isa/encoding.hh"

namespace turbofuzz::core
{
namespace
{

using isa::Opcode;
using isa::Operands;
namespace csr = isa::csr;

constexpr uint64_t base = 0x80000000ull;

uint64_t
d2b(double d)
{
    uint64_t b;
    std::memcpy(&b, &d, 8);
    return b;
}

class FpProgram : public ::testing::Test
{
  protected:
    FpProgram() : iss(&mem)
    {
        iss.reset(base);
    }

    void
    add(Opcode op, const Operands &o)
    {
        mem.write32(base + 4 * count, isa::encode(op, o));
        ++count;
    }

    CommitInfo step() { return iss.step(); }

    /** Preload an FP register via state (as the fuzzer's init would). */
    void
    setF(unsigned reg, double v)
    {
        iss.state().setF(reg, d2b(v));
    }

    soc::Memory mem;
    Iss iss;
    unsigned count = 0;
};

TEST_F(FpProgram, FaddDouble)
{
    setF(1, 1.25);
    setF(2, 2.5);
    Operands o;
    o.rd = 3;
    o.rs1 = 1;
    o.rs2 = 2;
    o.rm = csr::rmRNE;
    add(Opcode::FaddD, o);
    const auto c = step();
    EXPECT_FALSE(c.trapped);
    EXPECT_TRUE(c.frdWritten);
    EXPECT_EQ(c.frdValue, d2b(3.75));
}

TEST_F(FpProgram, FpDisabledTraps)
{
    iss.state().setFsField(csr::mstatusFsOff);
    Operands o;
    o.rd = 1;
    o.rs1 = 2;
    o.rs2 = 3;
    add(Opcode::FaddD, o);
    const auto c = step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeIllegalInstruction);
}

TEST_F(FpProgram, FpWriteMarksFsDirty)
{
    iss.state().setFsField(csr::mstatusFsInitial);
    setF(1, 1.0);
    setF(2, 2.0);
    Operands o;
    o.rd = 3;
    o.rs1 = 1;
    o.rs2 = 2;
    add(Opcode::FmulD, o);
    step();
    EXPECT_EQ(iss.state().fsField(), csr::mstatusFsDirty);
}

TEST_F(FpProgram, ReservedStaticRmTraps)
{
    setF(1, 1.0);
    setF(2, 2.0);
    Operands o;
    o.rd = 3;
    o.rs1 = 1;
    o.rs2 = 2;
    o.rm = 5; // reserved
    add(Opcode::FaddD, o);
    const auto c = step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeIllegalInstruction);
}

TEST_F(FpProgram, DynamicRmUsesFrm)
{
    iss.state().frm = csr::rmRUP;
    setF(1, 1.0);
    setF(2, 3.0);
    Operands o;
    o.rd = 3;
    o.rs1 = 1;
    o.rs2 = 2;
    o.rm = csr::rmDYN;
    add(Opcode::FdivD, o);
    const auto c = step();
    EXPECT_FALSE(c.trapped);
    double up;
    std::memcpy(&up, &c.frdValue, 8);
    EXPECT_GT(up, 1.0 / 3.0); // rounded up
}

TEST_F(FpProgram, DynamicInvalidFrmTraps)
{
    iss.state().frm = 6; // invalid dynamic mode
    setF(1, 1.0);
    setF(2, 3.0);
    Operands o;
    o.rd = 3;
    o.rs1 = 1;
    o.rs2 = 2;
    o.rm = csr::rmDYN;
    add(Opcode::FdivD, o);
    const auto c = step();
    EXPECT_TRUE(c.trapped);
}

TEST_F(FpProgram, FflagsAccumulateInCsr)
{
    setF(1, 1.0);
    setF(2, 0.0);
    Operands o;
    o.rd = 3;
    o.rs1 = 1;
    o.rs2 = 2;
    add(Opcode::FdivD, o); // DZ
    Operands o2 = o;
    o2.rd = 4;
    o2.rs1 = 2;
    o2.rs2 = 2;
    add(Opcode::FdivD, o2); // NV (0/0)
    step();
    step();
    EXPECT_EQ(iss.state().fflags, csr::flagDZ | csr::flagNV);
}

TEST_F(FpProgram, FlwFsdRoundTrip)
{
    iss.state().setX(1, 0x1000);
    setF(2, 6.5);
    Operands s;
    s.rs1 = 1;
    s.rs2 = 2;
    s.imm = 0;
    add(Opcode::Fsd, s);
    Operands l;
    l.rd = 3;
    l.rs1 = 1;
    l.imm = 0;
    add(Opcode::Fld, l);
    step();
    const auto c = step();
    EXPECT_EQ(c.frdValue, d2b(6.5));
}

TEST_F(FpProgram, FlwNanBoxes)
{
    iss.state().setX(1, 0x1000);
    mem.write32(0x1000, 0x3FC00000); // 1.5f
    Operands l;
    l.rd = 5;
    l.rs1 = 1;
    l.imm = 0;
    add(Opcode::Flw, l);
    const auto c = step();
    EXPECT_EQ(c.frdValue >> 32, 0xFFFFFFFFull);
    EXPECT_EQ(static_cast<uint32_t>(c.frdValue), 0x3FC00000u);
}

TEST_F(FpProgram, FmvTransfersRawBits)
{
    iss.state().setX(1, 0x123456789ABCDEF0ull);
    Operands o;
    o.rd = 2;
    o.rs1 = 1;
    add(Opcode::FmvDX, o);
    Operands back;
    back.rd = 3;
    back.rs1 = 2;
    add(Opcode::FmvXD, back);
    step();
    const auto c = step();
    EXPECT_EQ(c.rdValue, 0x123456789ABCDEF0ull);
}

TEST_F(FpProgram, FmvXWSignExtends)
{
    iss.state().setF(1, fp::boxS(0x80000001u));
    Operands o;
    o.rd = 2;
    o.rs1 = 1;
    add(Opcode::FmvXW, o);
    const auto c = step();
    EXPECT_EQ(c.rdValue, 0xFFFFFFFF80000001ull);
}

TEST_F(FpProgram, CompareWritesIntegerRd)
{
    setF(1, 1.0);
    setF(2, 2.0);
    Operands o;
    o.rd = 5;
    o.rs1 = 1;
    o.rs2 = 2;
    add(Opcode::FltD, o);
    const auto c = step();
    EXPECT_TRUE(c.rdWritten);
    EXPECT_FALSE(c.frdWritten);
    EXPECT_EQ(c.rdValue, 1u);
}

TEST_F(FpProgram, SinglePrecisionUsesUnboxedOperands)
{
    // f1 holds a raw double pattern (improperly boxed): fadd.s must
    // treat it as canonical NaN, so the result is NaN.
    iss.state().setF(1, d2b(1.5));
    iss.state().setF(2, fp::boxS(0x3FC00000)); // 1.5f
    Operands o;
    o.rd = 3;
    o.rs1 = 1;
    o.rs2 = 2;
    add(Opcode::FaddS, o);
    const auto c = step();
    EXPECT_EQ(static_cast<uint32_t>(c.frdValue), fp::canonicalNanS);
}

TEST_F(FpProgram, FclassFromIss)
{
    setF(1, -0.0);
    Operands o;
    o.rd = 2;
    o.rs1 = 1;
    add(Opcode::FclassD, o);
    const auto c = step();
    EXPECT_EQ(c.rdValue, 1u << 3);
}

TEST_F(FpProgram, CvtWordNegative)
{
    setF(1, -7.0);
    Operands o;
    o.rd = 2;
    o.rs1 = 1;
    o.rm = csr::rmRTZ;
    add(Opcode::FcvtWD, o);
    const auto c = step();
    EXPECT_EQ(c.rdValue, static_cast<uint64_t>(-7));
}

} // namespace
} // namespace turbofuzz::core
