/** @file Integer/branch/memory/CSR ISS semantics tests. */

#include <gtest/gtest.h>

#include <vector>

#include "core/iss.hh"
#include "isa/csr.hh"
#include "isa/encoding.hh"

namespace turbofuzz::core
{
namespace
{

using isa::Opcode;
using isa::Operands;

constexpr uint64_t base = 0x80000000ull;

/** Harness: load a program at the boot PC and step through it. */
class Program
{
  public:
    Program() : iss(&mem)
    {
        iss.reset(base);
    }

    void
    add(Opcode op, const Operands &o)
    {
        mem.write32(base + 4 * count, isa::encode(op, o));
        ++count;
    }

    void
    addWord(uint32_t w)
    {
        mem.write32(base + 4 * count, w);
        ++count;
    }

    CommitInfo step() { return iss.step(); }

    /** Step n times; returns the last commit. */
    CommitInfo
    run(unsigned n)
    {
        CommitInfo last;
        for (unsigned i = 0; i < n; ++i)
            last = iss.step();
        return last;
    }

    soc::Memory mem;
    Iss iss;
    unsigned count = 0;
};

Operands
opsRdRs1Imm(unsigned rd, unsigned rs1, int64_t imm)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    o.rs1 = static_cast<uint8_t>(rs1);
    o.imm = imm;
    return o;
}

Operands
opsR(unsigned rd, unsigned rs1, unsigned rs2)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    o.rs1 = static_cast<uint8_t>(rs1);
    o.rs2 = static_cast<uint8_t>(rs2);
    return o;
}

/** A commit compares equal field-by-field (batched-engine contract). */
void
expectSameCommit(const CommitInfo &a, const CommitInfo &b)
{
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.nextPc, b.nextPc);
    EXPECT_EQ(a.insn, b.insn);
    EXPECT_EQ(a.decodeValid, b.decodeValid);
    EXPECT_EQ(a.rdWritten, b.rdWritten);
    EXPECT_EQ(a.rdValue, b.rdValue);
    EXPECT_EQ(a.frdWritten, b.frdWritten);
    EXPECT_EQ(a.frdValue, b.frdValue);
    EXPECT_EQ(a.trapped, b.trapped);
    EXPECT_EQ(a.trapCause, b.trapCause);
    EXPECT_EQ(a.memAccess, b.memAccess);
    EXPECT_EQ(a.memAddr, b.memAddr);
    EXPECT_EQ(a.minstretAfter, b.minstretAfter);
    EXPECT_EQ(a.fflagsAccrued, b.fflagsAccrued);
}

TEST(IssStepMany, MatchesPerStepExecution)
{
    auto build = [](Program &p) {
        p.add(Opcode::Addi, opsRdRs1Imm(5, 0, 7));
        p.add(Opcode::Addi, opsRdRs1Imm(6, 5, 3));
        p.add(Opcode::Add, opsR(7, 5, 6));
        p.add(Opcode::Sd, [] {
            Operands o;
            o.rs1 = 0;
            o.rs2 = 7;
            o.imm = 0x100;
            return o;
        }());
        p.add(Opcode::Ld, opsRdRs1Imm(8, 0, 0x100));
        p.add(Opcode::Addi, opsRdRs1Imm(9, 8, 1));
    };

    Program seq;
    build(seq);
    std::vector<CommitInfo> expected;
    for (int i = 0; i < 6; ++i)
        expected.push_back(seq.step());

    Program batched;
    build(batched);
    CommitTrace trace;
    const uint64_t n = batched.iss.stepMany(
        trace, 6, [](const CommitInfo &) { return false; });
    ASSERT_EQ(n, 6u);
    ASSERT_EQ(trace.size(), 6u);
    for (size_t i = 0; i < 6; ++i)
        expectSameCommit(trace[i], expected[i]);
    EXPECT_EQ(batched.iss.state().pc, seq.iss.state().pc);
    EXPECT_EQ(batched.iss.state().x(9), seq.iss.state().x(9));
}

TEST(IssStepMany, StopFunctorEndsBatchAfterMatchingCommit)
{
    Program p;
    for (int i = 0; i < 8; ++i)
        p.add(Opcode::Addi, opsRdRs1Imm(5, 5, 1));

    CommitTrace trace;
    const uint64_t n = p.iss.stepMany(
        trace, 8, [&](const CommitInfo &ci) {
            return ci.rdValue == 3; // stop at the third increment
        });
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(p.iss.state().x(5), 3u);
    // The trace buffer is reusable: clear() keeps capacity, append()
    // continues from the front.
    trace.clear();
    EXPECT_TRUE(trace.empty());
    p.iss.stepMany(trace, 2, [](const CommitInfo &) { return false; });
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[1].rdValue, 5u);
}

TEST(IssInteger, AddiAndX0)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(5, 0, 123));
    p.add(Opcode::Addi, opsRdRs1Imm(0, 5, 1)); // write to x0 ignored
    p.run(2);
    EXPECT_EQ(p.iss.state().x(5), 123u);
    EXPECT_EQ(p.iss.state().x(0), 0u);
}

TEST(IssInteger, LuiAuipc)
{
    Program p;
    Operands o;
    o.rd = 3;
    o.imm = 0x80000; // negative when sign-extended from bit 31
    p.add(Opcode::Lui, o);
    o.rd = 4;
    o.imm = 1;
    p.add(Opcode::Auipc, o);
    p.run(2);
    EXPECT_EQ(p.iss.state().x(3), 0xFFFFFFFF80000000ull);
    EXPECT_EQ(p.iss.state().x(4), base + 4 + 0x1000);
}

TEST(IssInteger, ArithmeticOps)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 100));
    p.add(Opcode::Addi, opsRdRs1Imm(2, 0, 7));
    p.add(Opcode::Add, opsR(3, 1, 2));
    p.add(Opcode::Sub, opsR(4, 1, 2));
    p.add(Opcode::Xor, opsR(5, 1, 2));
    p.add(Opcode::Or, opsR(6, 1, 2));
    p.add(Opcode::And, opsR(7, 1, 2));
    p.add(Opcode::Slt, opsR(8, 2, 1));
    p.add(Opcode::Sltu, opsR(9, 1, 2));
    p.run(9);
    const auto &st = p.iss.state();
    EXPECT_EQ(st.x(3), 107u);
    EXPECT_EQ(st.x(4), 93u);
    EXPECT_EQ(st.x(5), 100u ^ 7u);
    EXPECT_EQ(st.x(6), 100u | 7u);
    EXPECT_EQ(st.x(7), 100u & 7u);
    EXPECT_EQ(st.x(8), 1u);
    EXPECT_EQ(st.x(9), 0u);
}

TEST(IssInteger, ShiftSemantics)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, -8)); // 0xFFF...F8
    p.add(Opcode::Srai, opsRdRs1Imm(2, 1, 2));
    p.add(Opcode::Srli, opsRdRs1Imm(3, 1, 60));
    p.add(Opcode::Slli, opsRdRs1Imm(4, 1, 4));
    p.run(4);
    const auto &st = p.iss.state();
    EXPECT_EQ(st.x(2), static_cast<uint64_t>(-2));
    EXPECT_EQ(st.x(3), 0xFull);
    EXPECT_EQ(st.x(4), static_cast<uint64_t>(-128));
}

TEST(IssInteger, WordOpsSignExtend)
{
    Program p;
    Operands o;
    o.rd = 1;
    o.imm = 0x7FFFF;
    p.add(Opcode::Lui, o); // x1 = 0x7FFFF000
    p.add(Opcode::Addiw, opsRdRs1Imm(2, 1, 0x7FF));
    p.add(Opcode::Addw, opsR(3, 1, 1)); // 0xFFFFE000 sign-extended
    p.run(3);
    const auto &st = p.iss.state();
    EXPECT_EQ(st.x(2), 0x7FFFF7FFull);
    EXPECT_EQ(st.x(3), 0xFFFFFFFFFFFFE000ull);
}

TEST(IssInteger, MulDivEdgeCases)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, -1));
    p.add(Opcode::Addi, opsRdRs1Imm(2, 0, 0));
    // div by zero -> all ones; rem by zero -> rs1.
    p.add(Opcode::Div, opsR(3, 1, 2));
    p.add(Opcode::Rem, opsR(4, 1, 2));
    // INT64_MIN / -1 overflow -> INT64_MIN, rem 0.
    Operands o;
    o.rd = 5;
    o.imm = 1;
    p.add(Opcode::Slli, opsRdRs1Imm(5, 1, 63)); // x5 = 1<<63 (INT64_MIN)
    p.add(Opcode::Div, opsR(6, 5, 1));
    p.add(Opcode::Rem, opsR(7, 5, 1));
    p.add(Opcode::Mulhu, opsR(8, 1, 1)); // (2^64-1)^2 >> 64
    p.run(8);
    const auto &st = p.iss.state();
    EXPECT_EQ(st.x(3), ~uint64_t{0});
    EXPECT_EQ(st.x(4), ~uint64_t{0});
    EXPECT_EQ(st.x(6), uint64_t{1} << 63);
    EXPECT_EQ(st.x(7), 0u);
    EXPECT_EQ(st.x(8), 0xFFFFFFFFFFFFFFFEull);
}

TEST(IssInteger, BranchesAndJumps)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 1));
    // beq x1, x0 -> not taken
    Operands b;
    b.rs1 = 1;
    b.rs2 = 0;
    b.imm = 8;
    p.add(Opcode::Beq, b);
    // bne x1, x0 -> taken, skips one instruction
    p.add(Opcode::Bne, b);
    p.add(Opcode::Addi, opsRdRs1Imm(2, 0, 99)); // skipped
    p.add(Opcode::Addi, opsRdRs1Imm(3, 0, 55));

    auto c1 = p.step(); // addi
    auto c2 = p.step(); // beq not taken
    EXPECT_FALSE(c2.branchTaken);
    auto c3 = p.step(); // bne taken
    EXPECT_TRUE(c3.branchTaken);
    auto c4 = p.step(); // lands on x3=55
    EXPECT_EQ(c4.rdValue, 55u);
    EXPECT_EQ(p.iss.state().x(2), 0u);
    (void)c1;
}

TEST(IssInteger, JalJalrLinkage)
{
    Program p;
    Operands j;
    j.rd = 1;
    j.imm = 12;
    p.add(Opcode::Jal, j); // jumps over 2 instructions, ra = pc+4
    p.add(Opcode::Addi, opsRdRs1Imm(2, 0, 1)); // skipped
    p.add(Opcode::Addi, opsRdRs1Imm(3, 0, 2)); // skipped
    Operands jr;
    jr.rd = 5;
    jr.rs1 = 1;
    jr.imm = 1; // odd target: bit 0 must be cleared
    p.add(Opcode::Jalr, jr);

    auto c1 = p.step();
    EXPECT_TRUE(c1.branchTaken);
    EXPECT_EQ(p.iss.state().x(1), base + 4);
    auto c2 = p.step(); // jalr back to base+4 (bit0 cleared)
    EXPECT_EQ(c2.nextPc, base + 4);
    EXPECT_EQ(p.iss.state().x(5), base + 16);
}

TEST(IssInteger, LoadStoreRoundTrip)
{
    Program p;
    Operands o;
    o.rd = 1;
    o.imm = 0x80001; // data page
    p.add(Opcode::Lui, o); // x1 = wrong; use addi chain instead
    p.count = 0;           // rewrite program
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 0x100));
    p.add(Opcode::Addi, opsRdRs1Imm(2, 0, -2));
    Operands s;
    s.rs1 = 1;
    s.rs2 = 2;
    s.imm = 8;
    p.add(Opcode::Sd, s);
    Operands l;
    l.rd = 3;
    l.rs1 = 1;
    l.imm = 8;
    p.add(Opcode::Ld, l);
    p.add(Opcode::Lw, l);
    Operands lb = l;
    lb.rd = 5;
    p.add(Opcode::Lbu, lb);
    p.run(2);
    auto cs = p.step();
    EXPECT_TRUE(cs.memAccess);
    EXPECT_TRUE(cs.memWrite);
    EXPECT_EQ(cs.memAddr, 0x108u);
    EXPECT_EQ(cs.memSize, 8u);
    auto cl = p.step();
    EXPECT_EQ(cl.rdValue, static_cast<uint64_t>(-2));
    auto clw = p.step();
    EXPECT_EQ(clw.rdValue, static_cast<uint64_t>(-2)); // sign-extended
    auto clb = p.step();
    EXPECT_EQ(clb.rdValue, 0xFEu);
}

TEST(IssInteger, AmoOperations)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 0x200));
    p.add(Opcode::Addi, opsRdRs1Imm(2, 0, 5));
    Operands a;
    a.rd = 3;
    a.rs1 = 1;
    a.rs2 = 2;
    p.add(Opcode::AmoaddW, a);
    p.add(Opcode::AmoaddW, a);
    Operands sw;
    sw.rd = 4;
    sw.rs1 = 1;
    sw.rs2 = 2;
    p.add(Opcode::AmoswapW, sw);
    p.run(5);
    const auto &st = p.iss.state();
    EXPECT_EQ(st.x(3), 5u);                 // old value after 1st amoadd
    EXPECT_EQ(st.x(4), 10u);                // old value before swap
    EXPECT_EQ(p.mem.read32(0x200), 5u);     // swapped-in value
}

TEST(IssInteger, LrScPairing)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 0x300));
    p.add(Opcode::Addi, opsRdRs1Imm(2, 0, 42));
    Operands lr;
    lr.rd = 3;
    lr.rs1 = 1;
    p.add(Opcode::LrW, lr);
    Operands sc;
    sc.rd = 4;
    sc.rs1 = 1;
    sc.rs2 = 2;
    p.add(Opcode::ScW, sc); // paired -> success (0)
    p.add(Opcode::ScW, sc); // no reservation -> failure (1)
    p.run(5);
    EXPECT_EQ(p.iss.state().x(4), 1u);
    EXPECT_EQ(p.mem.read32(0x300), 42u);
}

TEST(IssInteger, CsrReadWrite)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 0x15));
    Operands c;
    c.rd = 2;
    c.rs1 = 1;
    c.csr = isa::csr::fflags;
    p.add(Opcode::Csrrw, c); // swap fflags
    Operands c2;
    c2.rd = 3;
    c2.rs1 = 0;
    c2.csr = isa::csr::fflags;
    p.add(Opcode::Csrrs, c2); // read-only (rs1=x0)
    p.run(3);
    EXPECT_EQ(p.iss.state().x(2), 0u);    // old fflags
    EXPECT_EQ(p.iss.state().x(3), 0x15u); // new fflags
    EXPECT_EQ(p.iss.state().fflags, 0x15u);
}

TEST(IssInteger, CsrImmediateForms)
{
    Program p;
    Operands ci;
    ci.rd = 1;
    ci.imm = 0x1F;
    ci.csr = isa::csr::fflags;
    p.add(Opcode::Csrrwi, ci);
    Operands cc;
    cc.rd = 2;
    cc.imm = 0x3; // clear NX|UF
    cc.csr = isa::csr::fflags;
    p.add(Opcode::Csrrci, cc);
    p.run(2);
    EXPECT_EQ(p.iss.state().fflags, 0x1Cu);
}

TEST(IssInteger, MinstretCounts)
{
    Program p;
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 1));
    p.add(Opcode::Addi, opsRdRs1Imm(1, 1, 1));
    p.add(Opcode::Addi, opsRdRs1Imm(1, 1, 1));
    const auto last = p.run(3);
    EXPECT_EQ(last.minstretAfter, 3u);
    EXPECT_EQ(p.iss.state().minstret, 3u);
}

TEST(IssInteger, FenceIsNop)
{
    Program p;
    p.add(Opcode::Fence, {});
    const auto c = p.step();
    EXPECT_FALSE(c.trapped);
    EXPECT_EQ(c.nextPc, base + 4);
}

TEST(IssInteger, AccessRangeEnforcement)
{
    Program p;
    p.iss.addAccessRange(base, 0x1000);   // code page only
    p.iss.addAccessRange(0x100, 0x100);   // small data window
    p.add(Opcode::Addi, opsRdRs1Imm(1, 0, 0x100));
    Operands l;
    l.rd = 2;
    l.rs1 = 1;
    l.imm = 0;
    p.add(Opcode::Ld, l);
    l.imm = 0x100; // out of window
    p.add(Opcode::Ld, l);
    p.run(2);
    const auto c = p.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, isa::csr::causeLoadAccessFault);
    EXPECT_EQ(c.trapValue, 0x200u);
}

} // namespace
} // namespace turbofuzz::core
