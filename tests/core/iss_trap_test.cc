/** @file Trap behaviour tests (illegal, misaligned, ecall, mtvec). */

#include <gtest/gtest.h>

#include "core/iss.hh"
#include "isa/csr.hh"
#include "isa/encoding.hh"

namespace turbofuzz::core
{
namespace
{

using isa::Opcode;
using isa::Operands;
namespace csr = isa::csr;

constexpr uint64_t base = 0x80000000ull;
constexpr uint64_t handler = 0x80010000ull;

class TrapProgram : public ::testing::Test
{
  protected:
    TrapProgram() : iss(&mem)
    {
        iss.reset(base);
        iss.state().mtvec = handler;
    }

    void
    add(Opcode op, const Operands &o)
    {
        mem.write32(base + 4 * count, isa::encode(op, o));
        ++count;
    }

    soc::Memory mem;
    Iss iss;
    unsigned count = 0;
};

TEST_F(TrapProgram, IllegalInstructionWord)
{
    mem.write32(base, 0xFFFFFFFF);
    const auto c = iss.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeIllegalInstruction);
    EXPECT_EQ(iss.state().mepc, base);
    EXPECT_EQ(iss.state().mtval, 0xFFFFFFFFull);
    EXPECT_EQ(iss.state().pc, handler);
}

TEST_F(TrapProgram, EcallTrap)
{
    add(Opcode::Ecall, {});
    const auto c = iss.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeEcallM);
    EXPECT_EQ(iss.state().pc, handler);
}

TEST_F(TrapProgram, EbreakIncrementsMinstretInGoldenModel)
{
    add(Opcode::Ebreak, {});
    const auto c = iss.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeBreakpoint);
    EXPECT_EQ(c.minstretAfter, 1u);
}

TEST_F(TrapProgram, MisalignedFetch)
{
    iss.reset(base + 2);
    const auto c = iss.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeMisalignedFetch);
}

TEST_F(TrapProgram, MisalignedAmo)
{
    iss.state().setX(1, 0x1001);
    Operands a;
    a.rd = 2;
    a.rs1 = 1;
    a.rs2 = 3;
    add(Opcode::AmoaddW, a);
    const auto c = iss.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeMisalignedStore);
}

TEST_F(TrapProgram, TrapRecordsStvalMirror)
{
    mem.write32(base, 0xFFFFFFFF);
    iss.step();
    EXPECT_EQ(iss.state().stval, 0xFFFFFFFFull);
    EXPECT_EQ(iss.state().scause, csr::causeIllegalInstruction);
}

TEST_F(TrapProgram, UnknownCsrTraps)
{
    Operands o;
    o.rd = 1;
    o.rs1 = 0;
    o.csr = 0x7C0; // unimplemented custom CSR
    add(Opcode::Csrrs, o);
    const auto c = iss.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeIllegalInstruction);
}

TEST_F(TrapProgram, WriteToReadOnlyCsrTraps)
{
    Operands o;
    o.rd = 1;
    o.rs1 = 2;
    o.csr = csr::mhartid;
    iss.state().setX(2, 1);
    add(Opcode::Csrrw, o);
    const auto c = iss.step();
    EXPECT_TRUE(c.trapped);
}

TEST_F(TrapProgram, ReadOnlyCsrReadable)
{
    Operands o;
    o.rd = 1;
    o.rs1 = 0;
    o.csr = csr::mhartid;
    add(Opcode::Csrrs, o); // rs1=x0: pure read
    const auto c = iss.step();
    EXPECT_FALSE(c.trapped);
    EXPECT_EQ(c.rdValue, 0u);
}

TEST_F(TrapProgram, MtvecAlignmentForced)
{
    Operands o;
    o.rd = 0;
    o.rs1 = 1;
    o.csr = csr::mtvec;
    iss.state().setX(1, 0x80020002ull); // misaligned
    add(Opcode::Csrrw, o);
    iss.step();
    EXPECT_EQ(iss.state().mtvec, 0x80020000ull);
}

TEST_F(TrapProgram, TrapVectorRedirect)
{
    // Illegal instruction, then execution continues at the handler.
    mem.write32(base, 0xFFFFFFFF);
    Operands nop;
    nop.rd = 5;
    nop.rs1 = 0;
    nop.imm = 77;
    mem.write32(handler, isa::encode(Opcode::Addi, nop));
    iss.step();
    const auto c = iss.step();
    EXPECT_FALSE(c.trapped);
    EXPECT_EQ(c.pc, handler);
    EXPECT_EQ(iss.state().x(5), 77u);
}

TEST_F(TrapProgram, Rv64aDisabledTrapsDoubleAtomics)
{
    Iss::Options opt;
    opt.rv64aEnabled = false;
    Iss cva6(&mem, opt);
    cva6.reset(base);
    cva6.state().mtvec = handler;
    cva6.state().setX(1, 0x1000);
    Operands a;
    a.rd = 2;
    a.rs1 = 1;
    a.rs2 = 3;
    mem.write32(base, isa::encode(Opcode::AmoaddD, a));
    const auto c = cva6.step();
    EXPECT_TRUE(c.trapped);
    EXPECT_EQ(c.trapCause, csr::causeIllegalInstruction);

    // Word atomics remain legal.
    cva6.reset(base);
    cva6.state().mtvec = handler;
    cva6.state().setX(1, 0x1000);
    mem.write32(base, isa::encode(Opcode::AmoaddW, a));
    const auto c2 = cva6.step();
    EXPECT_FALSE(c2.trapped);
}

} // namespace
} // namespace turbofuzz::core
