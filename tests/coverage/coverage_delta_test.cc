/**
 * @file
 * Delta-publication equivalence tests (docs/fleet.md "Epoch barrier
 * anatomy"): for every feedback model, publishing dirty-word deltas
 * epoch by epoch and applying them to a global view must reproduce
 * the full-map merge byte-for-byte, across randomized hit patterns,
 * repeated epochs and reduction-tree shapes. Malformed deltas must be
 * rejected with a typed error and zero mutation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "coverage/coverage_delta.hh"
#include "coverage/coverage_map.hh"
#include "coverage/feedback_model.hh"
#include "coverage/provenance.hh"
#include "rtl/driver.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::coverage
{
namespace
{

std::unique_ptr<rtl::Module>
twoRegModule()
{
    auto m = std::make_unique<rtl::Module>("m");
    const uint32_t a =
        m->addRegister("a", 4, rtl::RegRole::Datapath);
    const uint32_t b =
        m->addRegister("b", 4, rtl::RegRole::Datapath);
    const uint32_t wa = m->addWire("wa", {a});
    const uint32_t wb = m->addWire("wb", {b});
    m->addMux("ma", wa);
    m->addMux("mb", wb);
    return m;
}

struct DriverFixture
{
    DriverFixture() : mod("m"), drv(&mod) {}
    rtl::Module mod;
    rtl::EventDriver drv;
};

core::CommitInfo
csrWrite(uint16_t addr, uint64_t value)
{
    core::CommitInfo ci;
    ci.csrWritten = true;
    ci.csrAddr = addr;
    ci.csrNewValue = value;
    return ci;
}

core::CommitInfo
edgeCommit(uint64_t pc, uint64_t next_pc)
{
    core::CommitInfo ci;
    ci.pc = pc;
    ci.nextPc = next_pc;
    return ci;
}

template <typename T>
std::vector<uint8_t>
stateBytes(const T &model)
{
    soc::SnapshotWriter w;
    model.saveState(w);
    return w.takeBuffer();
}

TEST(CoverageDelta, MapDeltaMatchesFullMergeAcrossEpochs)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap shard_a(&di), shard_b(&di);
    CoverageMap via_delta(&di), via_full(&di);
    Rng rng(0xdeadbeef);

    std::vector<SparseWords> delta_a, delta_b;
    for (unsigned epoch = 0; epoch < 8; ++epoch) {
        // Randomized hit pattern; later epochs mostly re-hit old
        // state, so deltas shrink toward empty — the O(new coverage)
        // regime the barrier optimizes for.
        for (unsigned i = 0; i < 24; ++i) {
            m->registers()[0].value = rng.range(16);
            m->registers()[1].value = rng.range(16);
            (rng.chance(1, 2) ? shard_a : shard_b).record();
        }

        // Delta path: publish both shards, reduce, apply once.
        shard_a.publishDelta(delta_a);
        shard_b.publishDelta(delta_b);
        ASSERT_EQ(delta_a.size(), delta_b.size());
        for (size_t w = 0; w < delta_a.size(); ++w)
            mergeSparseWords(delta_a[w], delta_b[w]);
        std::string error;
        ASSERT_TRUE(via_delta.mergeDelta(delta_a, &error)) << error;

        // Reference path: full-map merges in shard order.
        ASSERT_TRUE(via_full.merge(shard_a));
        ASSERT_TRUE(via_full.merge(shard_b));

        EXPECT_EQ(stateBytes(via_delta), stateBytes(via_full))
            << "diverged at epoch " << epoch;
        EXPECT_EQ(via_delta.totalCovered(), via_full.totalCovered());
    }

    // Once published, re-publishing without new coverage is empty.
    shard_a.publishDelta(delta_a);
    for (const SparseWords &w : delta_a)
        EXPECT_TRUE(w.empty());
}

TEST(CoverageDelta, MapRepublishesEverythingAfterRestore)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap shard(&di);
    for (uint64_t v = 0; v < 9; ++v) {
        m->registers()[0].value = v;
        shard.record();
    }

    // Drain the dirty bits, then checkpoint and restore: the restored
    // map must conservatively re-mark everything it holds, so a
    // resumed shard's first publication carries its full state (the
    // global merge is idempotent, so the over-publication is free).
    std::vector<SparseWords> scratch;
    shard.publishDelta(scratch);

    soc::SnapshotWriter w;
    shard.saveState(w);
    const auto bytes = w.takeBuffer();
    soc::SnapshotReader r(bytes);
    CoverageMap resumed(&di);
    std::string error;
    ASSERT_TRUE(resumed.loadState(r, &error)) << error;

    std::vector<SparseWords> republished;
    resumed.publishDelta(republished);
    CoverageMap global(&di);
    ASSERT_TRUE(global.mergeDelta(republished, &error)) << error;
    EXPECT_EQ(global.totalCovered(), shard.totalCovered());
    EXPECT_EQ(stateBytes(global), stateBytes(shard));
}

TEST(CoverageDelta, CsrDeltaMatchesFullMergeAcrossEpochs)
{
    DriverFixture fx;
    CsrTransitionModel shard_a, shard_b;
    CsrTransitionModel via_delta, via_full;
    Rng rng(0x5eed);

    SparseWords delta_a, delta_b;
    for (unsigned epoch = 0; epoch < 8; ++epoch) {
        for (unsigned i = 0; i < 32; ++i) {
            core::CommitInfo ci = csrWrite(
                static_cast<uint16_t>(0x300 + rng.range(5)),
                rng.range(16));
            CsrTransitionModel &shard =
                rng.chance(1, 2) ? shard_a : shard_b;
            shard.sweep(fx.drv, &ci, 1);
        }

        shard_a.publishDelta(delta_a);
        shard_b.publishDelta(delta_b);
        mergeSparseWords(delta_a, delta_b);
        std::string error;
        ASSERT_TRUE(via_delta.mergeDelta(delta_a, &error)) << error;

        ASSERT_TRUE(via_full.merge(shard_a));
        ASSERT_TRUE(via_full.merge(shard_b));

        EXPECT_EQ(stateBytes(via_delta), stateBytes(via_full))
            << "diverged at epoch " << epoch;
    }

    shard_a.publishDelta(delta_a);
    EXPECT_TRUE(delta_a.empty());
}

TEST(CoverageDelta, HitCountDeltaMatchesFullMergeAcrossEpochs)
{
    DriverFixture fx;
    HitCountModel shard_a, shard_b;
    HitCountModel via_delta, via_full;
    Rng rng(0xedce5);

    EdgeDelta delta_a, delta_b;
    for (unsigned epoch = 0; epoch < 8; ++epoch) {
        // Small pc pool: shards revisit the same edges with different
        // counts, exercising the bucket-OR / count-max merge rules.
        for (unsigned i = 0; i < 40; ++i) {
            const uint64_t pc = 0x1000 + 4 * rng.range(6);
            const uint64_t next = 0x1000 + 4 * rng.range(6);
            core::CommitInfo ci = edgeCommit(pc, next);
            HitCountModel &shard =
                rng.chance(1, 2) ? shard_a : shard_b;
            shard.sweep(fx.drv, &ci, 1);
        }

        shard_a.publishDelta(delta_a);
        shard_b.publishDelta(delta_b);
        // Reduce via the composite struct so the same EdgeDelta merge
        // the orchestrator's reduction tree uses is under test.
        CoverageDelta into, from;
        into.edges = delta_a;
        from.edges = delta_b;
        into.mergeFrom(from);
        std::string error;
        ASSERT_TRUE(via_delta.mergeDelta(into.edges, &error))
            << error;

        ASSERT_TRUE(via_full.merge(shard_a));
        ASSERT_TRUE(via_full.merge(shard_b));

        EXPECT_EQ(stateBytes(via_delta), stateBytes(via_full))
            << "diverged at epoch " << epoch;
    }

    shard_a.publishDelta(delta_a);
    EXPECT_TRUE(delta_a.empty());
}

TEST(CoverageDelta, TreeReductionMatchesSerialFold)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    Rng rng(0x7ee);

    // Four shard deltas with overlapping coverage plus first-hit
    // entries with colliding keys (min-wins tie-break under test).
    std::vector<CoverageDelta> deltas(4);
    for (unsigned s = 0; s < 4; ++s) {
        CoverageMap shard(&di);
        for (unsigned i = 0; i < 12; ++i) {
            m->registers()[0].value = rng.range(16);
            m->registers()[1].value = rng.range(16);
            shard.record();
        }
        shard.publishDelta(deltas[s].mux);
        FirstHit hit;
        hit.simTimeSec = 1.0 + s;
        hit.shard = s;
        hit.iteration = 100 - s;
        deltas[s].firstHits.push_back({42, hit});
        deltas[s].firstHits.push_back({50 + s, hit});
    }

    // Binary tree: (0+1), (2+3), then (01+23).
    std::vector<CoverageDelta> tree = deltas;
    tree[0].mergeFrom(tree[1]);
    tree[2].mergeFrom(tree[3]);
    tree[0].mergeFrom(tree[2]);

    // Serial left fold: ((0+1)+2)+3.
    std::vector<CoverageDelta> fold = deltas;
    fold[0].mergeFrom(fold[1]);
    fold[0].mergeFrom(fold[2]);
    fold[0].mergeFrom(fold[3]);

    CoverageMap g_tree(&di), g_fold(&di);
    FirstHitLedger l_tree, l_fold;
    std::string error;
    ASSERT_TRUE(g_tree.mergeDelta(tree[0].mux, &error)) << error;
    ASSERT_TRUE(g_fold.mergeDelta(fold[0].mux, &error)) << error;
    l_tree.mergeEntries(tree[0].firstHits);
    l_fold.mergeEntries(fold[0].firstHits);

    EXPECT_EQ(stateBytes(g_tree), stateBytes(g_fold));
    EXPECT_EQ(stateBytes(l_tree), stateBytes(l_fold));
    // Min-wins: the earliest (simTimeSec, shard, iteration) holds
    // the colliding key in both shapes.
    ASSERT_NE(l_tree.find(42), nullptr);
    EXPECT_EQ(l_tree.find(42)->shard, 0u);
}

TEST(CoverageDelta, LedgerDrainAndMergeMatchesCumulativeMerge)
{
    FirstHitLedger shard_a, shard_b;
    FirstHitLedger via_delta, via_full;
    shard_a.setShard(0);
    shard_b.setShard(1);
    Rng rng(0x1ed6e5);

    std::vector<std::pair<uint64_t, FirstHit>> fresh;
    for (unsigned epoch = 0; epoch < 6; ++epoch) {
        for (unsigned i = 0; i < 16; ++i) {
            FirstHitLedger &shard =
                rng.chance(1, 2) ? shard_a : shard_b;
            shard.setContext(epoch * 16 + i, rng.range(8),
                             static_cast<uint8_t>(rng.range(4)),
                             0.5 * epoch + 0.01 * i, 0);
            shard.record(rng.range(64)); // overlapping key space
        }

        shard_a.drainFreshHits(fresh);
        via_delta.mergeEntries(fresh);
        shard_b.drainFreshHits(fresh);
        via_delta.mergeEntries(fresh);

        via_full.merge(shard_a);
        via_full.merge(shard_b);

        EXPECT_EQ(stateBytes(via_delta), stateBytes(via_full))
            << "diverged at epoch " << epoch;
    }

    // Nothing new -> nothing drained.
    shard_a.drainFreshHits(fresh);
    EXPECT_TRUE(fresh.empty());
}

TEST(CoverageDelta, MalformedMapDeltaRejectedWithoutMutation)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    m->registers()[0].value = 7;
    map.record();
    const auto before = stateBytes(map);

    std::string error;

    // Wrong module count.
    std::vector<SparseWords> wrong_count(3);
    EXPECT_FALSE(map.mergeDelta(wrong_count, &error));
    EXPECT_NE(error.find("module count"), std::string::npos);
    EXPECT_EQ(stateBytes(map), before);

    // Derive the real module count from a valid publication (which
    // also drains the dirty bits — checked again at the end).
    std::vector<SparseWords> shape;
    map.publishDelta(shape);
    std::vector<SparseWords> bad(shape.size());

    // Index/value length mismatch.
    bad[0].index = {0};
    bad[0].value = {};
    error.clear();
    EXPECT_FALSE(map.mergeDelta(bad, &error));
    EXPECT_NE(error.find("length mismatch"), std::string::npos);

    // Out-of-range word index.
    bad[0].index = {0xFFFFFFFF};
    bad[0].value = {1};
    error.clear();
    EXPECT_FALSE(map.mergeDelta(bad, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos);

    // Out-of-order word indices.
    bad[0].index = {1, 0};
    bad[0].value = {1, 1};
    error.clear();
    EXPECT_FALSE(map.mergeDelta(bad, &error));
    EXPECT_NE(error.find("out of order"), std::string::npos);

    // The map is exactly what it was before any of the rejects —
    // including its dirty-word state (publishDelta above drained it,
    // so a fresh publication must come back empty).
    std::vector<SparseWords> repub;
    map.publishDelta(repub);
    for (const SparseWords &w : repub)
        EXPECT_TRUE(w.empty());
    EXPECT_EQ(stateBytes(map), before);
}

TEST(CoverageDelta, MalformedModelDeltasRejectedWithoutMutation)
{
    DriverFixture fx;

    CsrTransitionModel csr;
    core::CommitInfo w1 = csrWrite(0x300, 5);
    csr.sweep(fx.drv, &w1, 1);
    const auto csr_before = stateBytes(csr);
    std::string error;

    SparseWords bad;
    bad.index = {3, 1}; // out of order
    bad.value = {1, 1};
    EXPECT_FALSE(csr.mergeDelta(bad, &error));
    EXPECT_NE(error.find("out of order"), std::string::npos);
    bad.index = {0xFFFFFFFF};
    bad.value = {1};
    error.clear();
    EXPECT_FALSE(csr.mergeDelta(bad, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos);
    EXPECT_EQ(stateBytes(csr), csr_before);

    HitCountModel hits;
    core::CommitInfo e1 = edgeCommit(0x1000, 0x1004);
    hits.sweep(fx.drv, &e1, 1);
    const auto hits_before = stateBytes(hits);

    EdgeDelta bad_edges;
    bad_edges.edge = {1, 2};
    bad_edges.buckets = {1};
    bad_edges.counts = {1, 1};
    error.clear();
    EXPECT_FALSE(hits.mergeDelta(bad_edges, &error));
    EXPECT_NE(error.find("length mismatch"), std::string::npos);

    bad_edges.edge = {0xFFFFFFFF};
    bad_edges.buckets = {1};
    bad_edges.counts = {1};
    error.clear();
    EXPECT_FALSE(hits.mergeDelta(bad_edges, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos);

    bad_edges.edge = {5, 2};
    bad_edges.buckets = {1, 1};
    bad_edges.counts = {1, 1};
    error.clear();
    EXPECT_FALSE(hits.mergeDelta(bad_edges, &error));
    EXPECT_NE(error.find("out of order"), std::string::npos);
    EXPECT_EQ(stateBytes(hits), hits_before);
}

} // namespace
} // namespace turbofuzz::coverage
