/** @file Coverage-map accumulation tests. */

#include <gtest/gtest.h>

#include "coverage/coverage_map.hh"

namespace turbofuzz::coverage
{
namespace
{

std::unique_ptr<rtl::Module>
twoRegModule()
{
    auto m = std::make_unique<rtl::Module>("m");
    const uint32_t a =
        m->addRegister("a", 4, rtl::RegRole::Datapath);
    const uint32_t b =
        m->addRegister("b", 4, rtl::RegRole::Datapath);
    const uint32_t wa = m->addWire("wa", {a});
    const uint32_t wb = m->addWire("wb", {b});
    m->addMux("ma", wa);
    m->addMux("mb", wb);
    return m;
}

TEST(CoverageMap, RecordCountsNewPointsOnce)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);

    m->registers()[0].value = 1;
    m->registers()[1].value = 2;
    EXPECT_EQ(map.record(), 1u);
    EXPECT_EQ(map.record(), 0u); // same state, nothing new
    EXPECT_EQ(map.totalCovered(), 1u);

    m->registers()[0].value = 3;
    EXPECT_EQ(map.record(), 1u);
    EXPECT_EQ(map.totalCovered(), 2u);
}

TEST(CoverageMap, SaturatesAtModuleStateSpace)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    for (uint64_t a = 0; a < 16; ++a) {
        for (uint64_t b = 0; b < 16; ++b) {
            m->registers()[0].value = a;
            m->registers()[1].value = b;
            map.record();
        }
    }
    EXPECT_EQ(map.totalCovered(), 256u);
    // Re-sweeping adds nothing.
    for (uint64_t a = 0; a < 16; ++a) {
        m->registers()[0].value = a;
        EXPECT_EQ(map.record(), 0u);
    }
}

TEST(CoverageMap, ResetClears)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    map.record();
    map.reset();
    EXPECT_EQ(map.totalCovered(), 0u);
    EXPECT_EQ(map.record(), 1u);
}

TEST(CoverageMap, WeightedFeedbackShifts)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    for (uint64_t a = 0; a < 8; ++a) {
        m->registers()[0].value = a;
        map.record();
    }
    const uint64_t covered = map.totalCovered();
    EXPECT_EQ(map.weightedFeedback(), covered);

    di.setWeightShift("m", 2);
    EXPECT_EQ(map.weightedFeedback(), covered << 2);
    di.setWeightShift("m", -1);
    EXPECT_EQ(map.weightedFeedback(), covered >> 1);
}

TEST(CoverageMap, MergeUnions)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap a(&di), b(&di);

    m->registers()[0].value = 1;
    a.record();
    m->registers()[0].value = 2;
    b.record();
    m->registers()[0].value = 1; // overlap with a
    b.record();

    a.merge(b);
    EXPECT_EQ(a.totalCovered(), 2u);
}

TEST(CoverageMap, MergedTotalEqualsUnionOfPoints)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap a(&di), b(&di), reference(&di);

    // a covers states {1..4}, b covers {3..8}; union = {1..8}.
    for (uint64_t v = 1; v <= 8; ++v) {
        m->registers()[0].value = v;
        if (v <= 4)
            a.record();
        if (v >= 3)
            b.record();
        reference.record();
    }
    a.merge(b);
    EXPECT_EQ(a.totalCovered(), reference.totalCovered());
    EXPECT_EQ(a.moduleCovered(0), reference.moduleCovered(0));
    // The merge source is untouched.
    EXPECT_EQ(b.totalCovered(), 6u);
}

TEST(CoverageMap, MergeIsIdempotent)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap a(&di), b(&di);
    for (uint64_t v = 0; v < 5; ++v) {
        m->registers()[0].value = v;
        a.record();
        m->registers()[1].value = v;
        b.record();
    }
    a.merge(b);
    const uint64_t once = a.totalCovered();
    a.merge(b); // re-merging the same map changes nothing
    EXPECT_EQ(a.totalCovered(), once);
    a.merge(a); // self-merge is also a no-op
    EXPECT_EQ(a.totalCovered(), once);
}

TEST(CoverageMap, WeightedFeedbackConsistentAfterMerge)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    di.setWeightShift("m", 3);
    CoverageMap a(&di), b(&di);
    for (uint64_t v = 1; v <= 6; ++v) {
        m->registers()[0].value = v;
        (v % 2 ? a : b).record();
    }
    a.merge(b);
    // Weighted feedback is derived from the merged per-module
    // counts, not stale pre-merge state.
    EXPECT_EQ(a.weightedFeedback(), a.totalCovered() << 3);
}

TEST(CoverageMap, MergeAcrossIdenticalInstrumentations)
{
    // The fleet case: two shards build their own (identical) design
    // trees and instrumentations from the same seed; their maps must
    // merge as if they shared one instrumentation.
    auto m1 = twoRegModule();
    auto m2 = twoRegModule();
    DesignInstrumentation di1(m1.get(), Scheme::Optimized, 13, 1);
    DesignInstrumentation di2(m2.get(), Scheme::Optimized, 13, 1);
    CoverageMap a(&di1), b(&di2);
    EXPECT_TRUE(a.compatibleWith(b));

    m1->registers()[0].value = 1;
    a.record();
    m2->registers()[0].value = 2;
    b.record();
    m2->registers()[0].value = 1; // same state as a covered
    b.record();
    a.merge(b);
    EXPECT_EQ(a.totalCovered(), 2u);
}

TEST(CoverageMap, DifferentSeedBaselineInstrumentationsIncompatible)
{
    // Baseline instrumentation shifts registers by seed-dependent
    // amounts (once the control width exceeds the index width):
    // equal-sized maps from different seeds assign bit positions
    // differently and must refuse to merge.
    auto wide = []() {
        auto m = std::make_unique<rtl::Module>("w");
        for (int i = 0; i < 4; ++i) {
            const uint32_t r = m->addRegister(
                "r" + std::to_string(i), 10, rtl::RegRole::Datapath);
            const uint32_t w =
                m->addWire("w" + std::to_string(i), {r});
            m->addMux("m" + std::to_string(i), w);
        }
        return m;
    };
    auto m1 = wide();
    auto m2 = wide();
    DesignInstrumentation di1(m1.get(), Scheme::Baseline, 13, 1);
    DesignInstrumentation di2(m2.get(), Scheme::Baseline, 13, 99);
    CoverageMap a(&di1), b(&di2);
    EXPECT_FALSE(a.compatibleWith(b));
    // Same seed -> same placements -> compatible.
    DesignInstrumentation di3(m2.get(), Scheme::Baseline, 13, 1);
    CoverageMap c(&di3);
    EXPECT_TRUE(a.compatibleWith(c));
}

TEST(CoverageMap, IncompatibleShapesRefuseToMerge)
{
    auto m1 = twoRegModule();
    auto m2 = std::make_unique<rtl::Module>("other");
    const uint32_t r =
        m2->addRegister("r", 10, rtl::RegRole::Datapath);
    const uint32_t w = m2->addWire("w", {r});
    m2->addMux("mx", w);
    DesignInstrumentation di1(m1.get(), Scheme::Optimized, 13, 1);
    DesignInstrumentation di2(m2.get(), Scheme::Optimized, 13, 1);
    CoverageMap a(&di1), b(&di2);
    EXPECT_FALSE(a.compatibleWith(b));

    // Rejected with a typed error — and no mutation: the receiving
    // map's state must be exactly what it was before the attempt.
    b.record();
    const uint64_t before = a.totalCovered();
    std::string error;
    EXPECT_FALSE(a.merge(b, &error));
    EXPECT_NE(error.find("incompatible"), std::string::npos);
    EXPECT_EQ(a.totalCovered(), before);

    // The same rejection through the FeedbackModel interface.
    coverage::FeedbackModel &fa = a;
    error.clear();
    EXPECT_FALSE(fa.merge(b, &error));
    EXPECT_FALSE(error.empty());
}

TEST(CoverageMap, PerModuleCounts)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    map.record();
    ASSERT_EQ(map.moduleCount(), 1u);
    EXPECT_EQ(map.moduleCovered(0), 1u);
    EXPECT_EQ(map.moduleName(0), "m");
}

} // namespace
} // namespace turbofuzz::coverage
