/** @file Coverage-map accumulation tests. */

#include <gtest/gtest.h>

#include "coverage/coverage_map.hh"

namespace turbofuzz::coverage
{
namespace
{

std::unique_ptr<rtl::Module>
twoRegModule()
{
    auto m = std::make_unique<rtl::Module>("m");
    const uint32_t a =
        m->addRegister("a", 4, rtl::RegRole::Datapath);
    const uint32_t b =
        m->addRegister("b", 4, rtl::RegRole::Datapath);
    const uint32_t wa = m->addWire("wa", {a});
    const uint32_t wb = m->addWire("wb", {b});
    m->addMux("ma", wa);
    m->addMux("mb", wb);
    return m;
}

TEST(CoverageMap, RecordCountsNewPointsOnce)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);

    m->registers()[0].value = 1;
    m->registers()[1].value = 2;
    EXPECT_EQ(map.record(), 1u);
    EXPECT_EQ(map.record(), 0u); // same state, nothing new
    EXPECT_EQ(map.totalCovered(), 1u);

    m->registers()[0].value = 3;
    EXPECT_EQ(map.record(), 1u);
    EXPECT_EQ(map.totalCovered(), 2u);
}

TEST(CoverageMap, SaturatesAtModuleStateSpace)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    for (uint64_t a = 0; a < 16; ++a) {
        for (uint64_t b = 0; b < 16; ++b) {
            m->registers()[0].value = a;
            m->registers()[1].value = b;
            map.record();
        }
    }
    EXPECT_EQ(map.totalCovered(), 256u);
    // Re-sweeping adds nothing.
    for (uint64_t a = 0; a < 16; ++a) {
        m->registers()[0].value = a;
        EXPECT_EQ(map.record(), 0u);
    }
}

TEST(CoverageMap, ResetClears)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    map.record();
    map.reset();
    EXPECT_EQ(map.totalCovered(), 0u);
    EXPECT_EQ(map.record(), 1u);
}

TEST(CoverageMap, WeightedFeedbackShifts)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    for (uint64_t a = 0; a < 8; ++a) {
        m->registers()[0].value = a;
        map.record();
    }
    const uint64_t covered = map.totalCovered();
    EXPECT_EQ(map.weightedFeedback(), covered);

    di.setWeightShift("m", 2);
    EXPECT_EQ(map.weightedFeedback(), covered << 2);
    di.setWeightShift("m", -1);
    EXPECT_EQ(map.weightedFeedback(), covered >> 1);
}

TEST(CoverageMap, MergeUnions)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap a(&di), b(&di);

    m->registers()[0].value = 1;
    a.record();
    m->registers()[0].value = 2;
    b.record();
    m->registers()[0].value = 1; // overlap with a
    b.record();

    a.merge(b);
    EXPECT_EQ(a.totalCovered(), 2u);
}

TEST(CoverageMap, PerModuleCounts)
{
    auto m = twoRegModule();
    DesignInstrumentation di(m.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);
    map.record();
    ASSERT_EQ(map.moduleCount(), 1u);
    EXPECT_EQ(map.moduleCovered(0), 1u);
    EXPECT_EQ(map.moduleName(0), "m");
}

} // namespace
} // namespace turbofuzz::coverage
