/** @file Pluggable feedback-model tests (CSR, hit-count, composite). */

#include <gtest/gtest.h>

#include <algorithm>

#include "coverage/coverage_map.hh"
#include "coverage/feedback_model.hh"
#include "rtl/driver.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::coverage
{
namespace
{

/** A throwaway driver: the stream-only models never touch it. */
struct DriverFixture
{
    DriverFixture() : mod("m"), drv(&mod) {}
    rtl::Module mod;
    rtl::EventDriver drv;
};

core::CommitInfo
csrWrite(uint16_t addr, uint64_t value)
{
    core::CommitInfo ci;
    ci.csrWritten = true;
    ci.csrAddr = addr;
    ci.csrNewValue = value;
    return ci;
}

core::CommitInfo
trapCommit(uint64_t cause, uint64_t tval)
{
    core::CommitInfo ci;
    ci.trapped = true;
    ci.trapCause = cause;
    ci.trapValue = tval;
    return ci;
}

core::CommitInfo
edgeCommit(uint64_t pc, uint64_t next_pc)
{
    core::CommitInfo ci;
    ci.pc = pc;
    ci.nextPc = next_pc;
    return ci;
}

TEST(CoverageModelKindTest, NamesRoundTrip)
{
    for (CoverageModelKind kind :
         {CoverageModelKind::Mux, CoverageModelKind::Csr,
          CoverageModelKind::HitCount, CoverageModelKind::Composite}) {
        CoverageModelKind parsed{};
        ASSERT_TRUE(coverageModelFromString(
            std::string(coverageModelName(kind)), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    CoverageModelKind parsed{};
    EXPECT_FALSE(coverageModelFromString("bogus", &parsed));
    // "hitcount" is accepted as an alias of "edges".
    ASSERT_TRUE(coverageModelFromString("hitcount", &parsed));
    EXPECT_EQ(parsed, CoverageModelKind::HitCount);
}

TEST(CsrTransitionModel, CountsTransitionsNotWrites)
{
    DriverFixture fx;
    CsrTransitionModel model;

    // First write: transition (0 -> 5) is new.
    core::CommitInfo w1 = csrWrite(0x300, 5);
    EXPECT_EQ(model.sweep(fx.drv, &w1, 1), 1u);
    // Identical transition value (5 -> 5) is a different edge than
    // (0 -> 5), so it counts once...
    EXPECT_EQ(model.sweep(fx.drv, &w1, 1), 1u);
    // ...and repeating it adds nothing.
    EXPECT_EQ(model.sweep(fx.drv, &w1, 1), 0u);

    // A different CSR with the same value is its own transition.
    core::CommitInfo w2 = csrWrite(0x341, 5);
    EXPECT_EQ(model.sweep(fx.drv, &w2, 1), 1u);
    EXPECT_EQ(model.newlyHit(), 3u);
    EXPECT_EQ(model.trackedCsrs(), 2u);

    // Commits with no CSR side effect contribute nothing.
    core::CommitInfo plain = edgeCommit(0x1000, 0x1004);
    EXPECT_EQ(model.sweep(fx.drv, &plain, 1), 0u);
}

TEST(CsrTransitionModel, TrapEntriesAreTransitions)
{
    DriverFixture fx;
    CsrTransitionModel model;
    core::CommitInfo t1 = trapCommit(2, 0xdead);
    core::CommitInfo t2 = trapCommit(3, 0xdead);
    EXPECT_EQ(model.sweep(fx.drv, &t1, 1), 1u); // cause 2: 0 -> dead
    EXPECT_EQ(model.sweep(fx.drv, &t2, 1), 1u); // cause 3: 0 -> dead
    EXPECT_EQ(model.sweep(fx.drv, &t2, 1), 1u); // dead -> dead edge
    EXPECT_EQ(model.sweep(fx.drv, &t2, 1), 0u); // now saturated
}

TEST(CsrTransitionModel, SweepIsBatchSplitInvariant)
{
    DriverFixture fx;
    std::vector<core::CommitInfo> trace;
    for (uint64_t i = 0; i < 64; ++i)
        trace.push_back(csrWrite(
            static_cast<uint16_t>(0x300 + i % 5), i * 977));

    CsrTransitionModel whole;
    const uint64_t got =
        whole.sweep(fx.drv, trace.data(), trace.size());

    CsrTransitionModel split;
    uint64_t acc = 0;
    for (size_t at = 0; at < trace.size();) {
        const size_t n = std::min<size_t>(7, trace.size() - at);
        acc += split.sweep(fx.drv, trace.data() + at, n);
        at += n;
    }
    EXPECT_EQ(acc, got);
    EXPECT_EQ(split.newlyHit(), whole.newlyHit());
}

TEST(CsrTransitionModel, MergeOrsAndRejectsKindMismatch)
{
    DriverFixture fx;
    CsrTransitionModel a, b;
    core::CommitInfo w1 = csrWrite(0x300, 1);
    core::CommitInfo w2 = csrWrite(0x341, 2);
    a.sweep(fx.drv, &w1, 1);
    b.sweep(fx.drv, &w2, 1);

    std::string error;
    ASSERT_TRUE(a.merge(b, &error)) << error;
    EXPECT_EQ(a.newlyHit(), 2u);
    // Idempotent.
    ASSERT_TRUE(a.merge(b, &error));
    EXPECT_EQ(a.newlyHit(), 2u);

    HitCountModel other;
    EXPECT_FALSE(a.compatibleWith(other));
    EXPECT_FALSE(a.merge(other, &error));
    EXPECT_NE(error.find("kind mismatch"), std::string::npos);
    EXPECT_EQ(a.newlyHit(), 2u); // untouched by the rejection
}

TEST(CsrTransitionModel, SaveLoadRoundTripAndRejectsCorruption)
{
    DriverFixture fx;
    CsrTransitionModel model;
    for (uint64_t i = 0; i < 32; ++i) {
        core::CommitInfo w =
            csrWrite(static_cast<uint16_t>(0x300 + i % 3), i * 13);
        model.sweep(fx.drv, &w, 1);
    }

    soc::SnapshotWriter w;
    model.saveState(w);
    const auto image = w.buffer();

    CsrTransitionModel back;
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(back.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());
    EXPECT_EQ(back.newlyHit(), model.newlyHit());
    EXPECT_EQ(back.trackedCsrs(), model.trackedCsrs());

    // The restored per-CSR history continues identically: the next
    // event lands on the same transition edge in both models.
    core::CommitInfo next = csrWrite(0x300, 0x123456789abcdefull);
    EXPECT_EQ(back.sweep(fx.drv, &next, 1),
              model.sweep(fx.drv, &next, 1));
    EXPECT_EQ(back.newlyHit(), model.newlyHit());

    // Corrupt hit counter: rejected with a typed error.
    auto bad = image;
    bad[0] ^= 0x5A;
    soc::SnapshotReader bad_reader(bad);
    CsrTransitionModel victim;
    EXPECT_FALSE(victim.loadState(bad_reader, &error));
    EXPECT_NE(error.find("disagrees"), std::string::npos);

    // Truncated input: rejected, not overread.
    std::vector<uint8_t> tiny(image.begin(), image.begin() + 9);
    soc::SnapshotReader tiny_reader(tiny);
    EXPECT_FALSE(victim.loadState(tiny_reader, &error));
}

TEST(HitCountModel, BucketsLightProgressively)
{
    EXPECT_EQ(HitCountModel::bucketBit(0), 0u); // never hit
    EXPECT_EQ(HitCountModel::bucketBit(1), 1u << 0);
    EXPECT_EQ(HitCountModel::bucketBit(2), 1u << 1);
    EXPECT_EQ(HitCountModel::bucketBit(3), 1u << 2);
    EXPECT_EQ(HitCountModel::bucketBit(4), 1u << 3);
    EXPECT_EQ(HitCountModel::bucketBit(7), 1u << 3);
    EXPECT_EQ(HitCountModel::bucketBit(8), 1u << 4);
    EXPECT_EQ(HitCountModel::bucketBit(16), 1u << 5);
    EXPECT_EQ(HitCountModel::bucketBit(32), 1u << 6);
    EXPECT_EQ(HitCountModel::bucketBit(127), 1u << 6);
    EXPECT_EQ(HitCountModel::bucketBit(128), 1u << 7);
    EXPECT_EQ(HitCountModel::bucketBit(100000), 1u << 7);

    DriverFixture fx;
    HitCountModel model;
    core::CommitInfo loop = edgeCommit(0x1000, 0x1004);

    // Revisiting the same edge counts as new behaviour exactly at
    // the bucket boundaries: counts 1, 2, 3, 4, 8, 16, 32, 128.
    uint64_t newly = 0;
    for (int i = 0; i < 200; ++i)
        newly += model.sweep(fx.drv, &loop, 1);
    EXPECT_EQ(newly, 8u);
    EXPECT_EQ(model.newlyHit(), 8u);

    // A different edge is new again.
    core::CommitInfo other = edgeCommit(0x1004, 0x2000);
    EXPECT_EQ(model.sweep(fx.drv, &other, 1), 1u);
}

TEST(HitCountModel, MergeTakesUnionAndMaxCounts)
{
    DriverFixture fx;
    HitCountModel a, b;
    core::CommitInfo e1 = edgeCommit(0x1000, 0x1004);
    core::CommitInfo e2 = edgeCommit(0x2000, 0x2004);
    a.sweep(fx.drv, &e1, 1);
    for (int i = 0; i < 5; ++i)
        b.sweep(fx.drv, &e2, 1); // buckets 1, 2, 3, 4-7

    std::string error;
    ASSERT_TRUE(a.merge(b, &error)) << error;
    EXPECT_EQ(a.newlyHit(), 1u + 4u);
    ASSERT_TRUE(a.merge(b, &error)); // idempotent
    EXPECT_EQ(a.newlyHit(), 5u);

    // After the merge, edge e2 continues from the donor's count: two
    // more hits cross into the 8-15 bucket.
    a.sweep(fx.drv, &e2, 1);
    a.sweep(fx.drv, &e2, 1);
    a.sweep(fx.drv, &e2, 1);
    EXPECT_EQ(a.newlyHit(), 6u);

    CsrTransitionModel other;
    EXPECT_FALSE(a.merge(other, &error));
    EXPECT_NE(error.find("kind mismatch"), std::string::npos);
}

TEST(HitCountModel, SaveLoadRoundTripAndRejectsCorruption)
{
    DriverFixture fx;
    HitCountModel model;
    for (uint64_t i = 0; i < 100; ++i) {
        core::CommitInfo e =
            edgeCommit(0x1000 + 4 * (i % 7), 0x1000 + 4 * (i % 3));
        model.sweep(fx.drv, &e, 1);
    }

    soc::SnapshotWriter w;
    model.saveState(w);
    const auto image = w.buffer();

    HitCountModel back;
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(back.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());
    EXPECT_EQ(back.newlyHit(), model.newlyHit());

    auto bad = image;
    bad[0] ^= 0xFF;
    soc::SnapshotReader bad_reader(bad);
    HitCountModel victim;
    EXPECT_FALSE(victim.loadState(bad_reader, &error));
    EXPECT_NE(error.find("disagrees"), std::string::npos);

    std::vector<uint8_t> tiny(image.begin(), image.begin() + 100);
    soc::SnapshotReader tiny_reader(tiny);
    EXPECT_FALSE(victim.loadState(tiny_reader, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(CompositeFeedback, WeightsShapeTheIncrement)
{
    DriverFixture fx;
    CsrTransitionModel csr;
    HitCountModel edges;
    CompositeFeedback comp({{&csr, 4}, {&edges, 1}});

    // One commit carrying both a fresh CSR transition and a fresh
    // edge: increment = 1*4 + 1*1.
    core::CommitInfo ci = csrWrite(0x300, 7);
    ci.pc = 0x1000;
    ci.nextPc = 0x1004;
    EXPECT_EQ(comp.sweep(fx.drv, &ci, 1), 5u);
    EXPECT_EQ(comp.newlyHit(), 5u);

    // Weight-0 parts are swept (state advances) but contribute 0.
    CsrTransitionModel csr2;
    HitCountModel edges2;
    CompositeFeedback muted({{&csr2, 0}, {&edges2, 1}});
    core::CommitInfo ci2 = csrWrite(0x300, 7);
    ci2.pc = 0x1000;
    ci2.nextPc = 0x1004;
    EXPECT_EQ(muted.sweep(fx.drv, &ci2, 1), 1u);
    EXPECT_EQ(csr2.newlyHit(), 1u); // swept despite weight 0
}

TEST(CompositeFeedback, MergeDelegatesAndRejectsShapeMismatch)
{
    DriverFixture fx;
    CsrTransitionModel csr_a, csr_b;
    HitCountModel edge_a, edge_b;
    CompositeFeedback a({{&csr_a, 1}, {&edge_a, 1}});
    CompositeFeedback b({{&csr_b, 1}, {&edge_b, 1}});

    core::CommitInfo ci = csrWrite(0x305, 9);
    ci.pc = 0x4000;
    ci.nextPc = 0x4010;
    b.sweep(fx.drv, &ci, 1);

    std::string error;
    ASSERT_TRUE(a.compatibleWith(b));
    ASSERT_TRUE(a.merge(b, &error)) << error;
    EXPECT_EQ(csr_a.newlyHit(), 1u);
    EXPECT_EQ(edge_a.newlyHit(), 1u);

    // Different part count: rejected before any mutation.
    CsrTransitionModel lone;
    CompositeFeedback short_comp({{&lone, 1}});
    EXPECT_FALSE(a.compatibleWith(short_comp));
    EXPECT_FALSE(a.merge(short_comp, &error));
    EXPECT_NE(error.find("part mismatch"), std::string::npos);

    // Same count, crossed kinds: rejected with no part mutated.
    CompositeFeedback crossed({{&edge_b, 1}, {&csr_b, 1}});
    const uint64_t before_csr = csr_a.newlyHit();
    const uint64_t before_edge = edge_a.newlyHit();
    EXPECT_FALSE(a.merge(crossed, &error));
    EXPECT_EQ(csr_a.newlyHit(), before_csr);
    EXPECT_EQ(edge_a.newlyHit(), before_edge);

    // Same kinds but different weights: compatibleWith() declares
    // the composites incompatible, and merge honors that.
    CompositeFeedback reweighted({{&csr_b, 2}, {&edge_b, 1}});
    EXPECT_FALSE(a.compatibleWith(reweighted));
    EXPECT_FALSE(a.merge(reweighted, &error));
    EXPECT_EQ(csr_a.newlyHit(), before_csr);
}

TEST(CompositeFeedback, SaveLoadDelegatesToParts)
{
    DriverFixture fx;
    CsrTransitionModel csr;
    HitCountModel edges;
    CompositeFeedback comp({{&csr, 2}, {&edges, 3}});
    for (uint64_t i = 0; i < 20; ++i) {
        core::CommitInfo ci =
            csrWrite(static_cast<uint16_t>(0x300 + i % 2), i);
        ci.pc = 0x1000 + 4 * i;
        ci.nextPc = 0x1004 + 4 * i;
        comp.sweep(fx.drv, &ci, 1);
    }

    soc::SnapshotWriter w;
    comp.saveState(w);
    const auto image = w.buffer();

    CsrTransitionModel csr_back;
    HitCountModel edges_back;
    CompositeFeedback back({{&csr_back, 2}, {&edges_back, 3}});
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(back.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());
    EXPECT_EQ(back.newlyHit(), comp.newlyHit());
    EXPECT_EQ(csr_back.newlyHit(), csr.newlyHit());
    EXPECT_EQ(edges_back.newlyHit(), edges.newlyHit());

    // Part-count mismatch is a typed error.
    CsrTransitionModel lone;
    CompositeFeedback wrong({{&lone, 2}});
    soc::SnapshotReader r2(image);
    EXPECT_FALSE(wrong.loadState(r2, &error));
    EXPECT_NE(error.find("part count"), std::string::npos);
}

TEST(FeedbackModel, CoverageMapKindMismatchRejected)
{
    // The mux map refuses to merge a different model kind through
    // the FeedbackModel interface.
    auto mod = std::make_unique<rtl::Module>("m");
    const uint32_t a =
        mod->addRegister("a", 4, rtl::RegRole::Datapath);
    const uint32_t wa = mod->addWire("wa", {a});
    mod->addMux("ma", wa);
    DesignInstrumentation di(mod.get(), Scheme::Optimized, 13, 1);
    CoverageMap map(&di);

    CsrTransitionModel csr;
    std::string error;
    EXPECT_FALSE(map.compatibleWith(csr));
    EXPECT_FALSE(
        static_cast<FeedbackModel &>(map).merge(csr, &error));
    EXPECT_NE(error.find("kind mismatch"), std::string::npos);
}

} // namespace
} // namespace turbofuzz::coverage
