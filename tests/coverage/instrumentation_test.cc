/** @file Instrumentation-scheme tests (§VI algorithms). */

#include <gtest/gtest.h>

#include <set>

#include "coverage/instrumentation.hh"
#include "rtl/cores.hh"

namespace turbofuzz::coverage
{
namespace
{

/** Module with @p nregs unconstrained w-bit registers, all control. */
std::unique_ptr<rtl::Module>
denseModule(unsigned nregs, unsigned width)
{
    auto m = std::make_unique<rtl::Module>("dense");
    for (unsigned i = 0; i < nregs; ++i) {
        const uint32_t r =
            m->addRegister("r" + std::to_string(i), width,
                           rtl::RegRole::Datapath);
        const uint32_t w =
            m->addWire("w" + std::to_string(i), {r});
        m->addMux("m" + std::to_string(i), w);
    }
    return m;
}

TEST(Instrumentation, SmallModuleConcatenatesLossless)
{
    // 3 x 4 bits = 12 <= 13: plain concatenation, index = 12 bits.
    auto m = denseModule(3, 4);
    ModuleInstrumentation mi(m.get(), Scheme::Baseline, 13, 1);
    EXPECT_EQ(mi.indexBits(), 12u);
    EXPECT_EQ(mi.instrumentedPoints(), 4096u);

    // Offsets are sequential: 0, 4, 8.
    EXPECT_EQ(mi.placements()[0].offset, 0u);
    EXPECT_EQ(mi.placements()[1].offset, 4u);
    EXPECT_EQ(mi.placements()[2].offset, 8u);

    // Distinct register states map to distinct indices (injective).
    std::set<uint64_t> seen;
    for (uint64_t a = 0; a < 16; ++a) {
        for (uint64_t b = 0; b < 16; ++b) {
            m->registers()[0].value = a;
            m->registers()[1].value = b;
            m->registers()[2].value = a ^ b;
            seen.insert(mi.computeIndex());
        }
    }
    EXPECT_EQ(seen.size(), 256u);
}

TEST(Instrumentation, LargeModuleCompressesToMaxStateSize)
{
    auto m = denseModule(8, 4); // 32 bits > 13
    ModuleInstrumentation base(m.get(), Scheme::Baseline, 13, 1);
    ModuleInstrumentation opt(m.get(), Scheme::Optimized, 13, 1);
    EXPECT_EQ(base.indexBits(), 13u);
    EXPECT_EQ(opt.indexBits(), 13u);
    EXPECT_EQ(base.instrumentedPoints(), 8192u);
}

TEST(Instrumentation, OptimizedOffsetsFollowEquationTwo)
{
    auto m = denseModule(8, 4);
    ModuleInstrumentation opt(m.get(), Scheme::Optimized, 13, 1);
    // new_offset = (last_offset + W) % maxStateSize (eq. 2).
    unsigned expect = 0;
    for (const Placement &p : opt.placements()) {
        EXPECT_EQ(p.offset, expect);
        EXPECT_TRUE(p.wraps);
        expect = (expect + 4) % 13;
    }
}

TEST(Instrumentation, BaselineShiftsAreSeedDeterministic)
{
    auto m = denseModule(8, 4);
    ModuleInstrumentation a(m.get(), Scheme::Baseline, 13, 7);
    ModuleInstrumentation b(m.get(), Scheme::Baseline, 13, 7);
    ModuleInstrumentation c(m.get(), Scheme::Baseline, 13, 8);
    bool same_ab = true, same_ac = true;
    for (size_t i = 0; i < a.placements().size(); ++i) {
        same_ab &= a.placements()[i].offset == b.placements()[i].offset;
        same_ac &= a.placements()[i].offset == c.placements()[i].offset;
    }
    EXPECT_TRUE(same_ab);
    EXPECT_FALSE(same_ac);
}

TEST(Instrumentation, IndexStaysInRange)
{
    auto m = denseModule(8, 4);
    for (const auto scheme : {Scheme::Baseline, Scheme::Optimized}) {
        ModuleInstrumentation mi(m.get(), scheme, 13, 3);
        uint64_t s = 12345;
        for (int iter = 0; iter < 1000; ++iter) {
            for (auto &r : m->registers()) {
                s = s * 6364136223846793005ull + 1;
                r.value = (s >> 33) & 0xF;
            }
            EXPECT_LT(mi.computeIndex(), 8192u);
        }
    }
}

TEST(Instrumentation, OptimizedIndexSensitiveToEveryRegister)
{
    auto m = denseModule(8, 4);
    ModuleInstrumentation mi(m.get(), Scheme::Optimized, 13, 1);
    for (auto &r : m->registers())
        r.value = 0;
    const uint64_t base_idx = mi.computeIndex();
    for (size_t i = 0; i < m->registers().size(); ++i) {
        m->registers()[i].value = 5;
        EXPECT_NE(mi.computeIndex(), base_idx) << "register " << i;
        m->registers()[i].value = 0;
    }
}

TEST(DesignInstrumentationTest, InstrumentsWholeTree)
{
    auto design = rtl::buildRocketLike();
    DesignInstrumentation di(design.get(), Scheme::Optimized, 15, 1);
    EXPECT_EQ(di.modules().size(), 7u);
    EXPECT_GT(di.totalInstrumentedPoints(), 100000u);
}

TEST(DesignInstrumentationTest, ModuleSelection)
{
    auto design = rtl::buildRocketLike();
    DesignInstrumentation di(design.get(), Scheme::Optimized, 15, 1,
                             {"FPU", "CSRFile"});
    EXPECT_EQ(di.modules().size(), 2u);
}

TEST(DesignInstrumentationTest, WeightShift)
{
    auto design = rtl::buildRocketLike();
    DesignInstrumentation di(design.get(), Scheme::Optimized, 15, 1);
    di.setWeightShift("MulDiv", -2);
    bool found = false;
    for (const auto &m : di.modules()) {
        if (m.module().name() == "MulDiv") {
            EXPECT_EQ(m.weightShift, -2);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_EXIT(di.setWeightShift("NoSuchModule", 1),
                testing::ExitedWithCode(1), "no instrumented module");
}

} // namespace
} // namespace turbofuzz::coverage
