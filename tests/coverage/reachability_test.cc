/** @file Reachability-analysis tests (Fig. 6 machinery). */

#include <gtest/gtest.h>

#include "coverage/reachability.hh"
#include "rtl/cores.hh"

namespace turbofuzz::coverage
{
namespace
{

std::unique_ptr<rtl::Module>
moduleWith(std::vector<std::pair<unsigned, std::vector<uint64_t>>>
               reg_specs)
{
    auto m = std::make_unique<rtl::Module>("m");
    unsigned i = 0;
    for (auto &[width, domain] : reg_specs) {
        const uint32_t r =
            m->addRegister("r" + std::to_string(i), width,
                           rtl::RegRole::Datapath, domain);
        const uint32_t w = m->addWire("w" + std::to_string(i), {r});
        m->addMux("mux" + std::to_string(i), w);
        ++i;
    }
    return m;
}

TEST(Reachability, LosslessModuleFullyAchievable)
{
    // 12 bits of unconstrained state in a 13-bit budget.
    auto m = moduleWith({{4, {}}, {4, {}}, {4, {}}});
    ModuleInstrumentation mi(m.get(), Scheme::Baseline, 13, 1);
    const auto r = analyzeModule(mi);
    EXPECT_EQ(r.instrumented, 4096u);
    EXPECT_EQ(r.achievable, 4096u);
    EXPECT_TRUE(r.exact);
    EXPECT_DOUBLE_EQ(r.achievableFraction(), 1.0);
}

TEST(Reachability, ConstrainedDomainLimitsAchievable)
{
    // A lone one-hot FSM: only 4 of 16 points are reachable.
    auto m = moduleWith({{4, {1, 2, 4, 8}}});
    ModuleInstrumentation mi(m.get(), Scheme::Baseline, 13, 1);
    const auto r = analyzeModule(mi);
    EXPECT_EQ(r.instrumented, 16u);
    EXPECT_EQ(r.achievable, 4u);
}

TEST(Reachability, MixedDomainProduct)
{
    // 2-bit free register x 3-value enum: 4 * 3 = 12 achievable.
    auto m = moduleWith({{2, {}}, {2, {0, 1, 2}}});
    ModuleInstrumentation mi(m.get(), Scheme::Baseline, 13, 1);
    const auto r = analyzeModule(mi);
    EXPECT_EQ(r.instrumented, 16u);
    EXPECT_EQ(r.achievable, 12u);
}

TEST(Reachability, OptimizedAllocatesOnlyAchievable)
{
    auto m = moduleWith({{4, {1, 2, 4, 8}}});
    ModuleInstrumentation mi(m.get(), Scheme::Optimized, 13, 1);
    const auto r = analyzeModule(mi);
    EXPECT_EQ(r.instrumented, r.achievable);
}

TEST(Reachability, BaselineCompressionLosesPoints)
{
    // 32 bits crammed into 13: baseline's random shifts leave
    // uncovered positions; the optimized rollback does not.
    auto m = moduleWith({{4, {}}, {4, {}}, {4, {}}, {4, {}},
                         {4, {}}, {4, {}}, {4, {}}, {4, {}}});
    ModuleInstrumentation base(m.get(), Scheme::Baseline, 13, 1);
    ModuleInstrumentation opt(m.get(), Scheme::Optimized, 13, 1);
    const auto rb = analyzeModule(base);
    const auto ro = analyzeModule(opt);
    EXPECT_LE(rb.achievable, rb.instrumented);
    EXPECT_EQ(ro.achievable, ro.instrumented);
    EXPECT_EQ(ro.achievable, 8192u); // full rollback coverage
    EXPECT_GE(ro.achievable, rb.achievable);
}

TEST(Reachability, AchievableNeverExceedsInstrumented)
{
    auto design = rtl::buildRocketLike();
    for (const auto scheme : {Scheme::Baseline, Scheme::Optimized}) {
        for (unsigned bits : {13u, 14u, 15u}) {
            DesignInstrumentation di(design.get(), scheme, bits, 99);
            for (const auto &mr : analyzeDesign(di)) {
                EXPECT_LE(mr.achievable, mr.instrumented)
                    << mr.moduleName;
                EXPECT_GT(mr.achievable, 0u) << mr.moduleName;
            }
        }
    }
}

TEST(Reachability, PaperTrendBaselineDegradesWithWidth)
{
    // Averaged over seeds, the baseline achievable fraction must not
    // improve as the index widens (the Fig. 6 trend).
    auto design = rtl::buildRocketLike();
    double frac13 = 0.0, frac15 = 0.0;
    for (uint64_t seed = 0; seed < 6; ++seed) {
        DesignInstrumentation d13(design.get(), Scheme::Baseline, 13,
                                  seed);
        DesignInstrumentation d15(design.get(), Scheme::Baseline, 15,
                                  seed);
        frac13 += totals(analyzeDesign(d13)).achievableFraction();
        frac15 += totals(analyzeDesign(d15)).achievableFraction();
    }
    EXPECT_GT(frac13, frac15);
}

TEST(Reachability, OptimizedAlwaysFullyAchievable)
{
    auto design = rtl::buildRocketLike();
    DesignInstrumentation di(design.get(), Scheme::Optimized, 15, 1);
    const auto t = totals(analyzeDesign(di));
    EXPECT_DOUBLE_EQ(t.achievableFraction(), 1.0);
}

TEST(Reachability, TotalsAggregate)
{
    std::vector<ModuleReachability> mods = {
        {"a", 100, 50, true},
        {"b", 200, 200, true},
    };
    const auto t = totals(mods);
    EXPECT_EQ(t.instrumented, 300u);
    EXPECT_EQ(t.achievable, 250u);
    EXPECT_NEAR(t.achievableFraction(), 250.0 / 300.0, 1e-12);
}

} // namespace
} // namespace turbofuzz::coverage
