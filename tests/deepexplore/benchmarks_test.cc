/** @file Synthetic-benchmark tests. */

#include <gtest/gtest.h>

#include "deepexplore/benchmarks.hh"
#include "deepexplore/bbv.hh"
#include "deepexplore/simpoint.hh"

namespace turbofuzz::deepexplore
{
namespace
{

class BenchmarkCase
    : public ::testing::TestWithParam<int>
{
  protected:
    Program
    build() const
    {
        const fuzzer::MemoryLayout lay;
        BenchmarkParams params;
        params.outerIterations = 10;
        params.innerIterations = 8;
        switch (GetParam()) {
          case 0: return buildCoremarkLike(lay, params);
          case 1: return buildDhrystoneLike(lay, params);
          default: return buildMicrobenchLike(lay, params);
        }
    }
};

TEST_P(BenchmarkCase, RunsToCompletionWithoutTraps)
{
    const fuzzer::MemoryLayout lay;
    const Program p = build();
    const BenchmarkProfile prof = profileBenchmark(p, lay, 512);
    EXPECT_TRUE(prof.completed) << p.name;
    EXPECT_GT(prof.totalInstructions, 500u) << p.name;
    EXPECT_FALSE(prof.intervals.empty());
}

TEST_P(BenchmarkCase, ExhibitsRecurringPhases)
{
    // SimPoint exploits recurring behaviour: with enough intervals,
    // at least two must share an identical BBV support set.
    const fuzzer::MemoryLayout lay;
    const Program p = build();
    const BenchmarkProfile prof = profileBenchmark(p, lay, 256);
    if (prof.intervals.size() < 4)
        GTEST_SKIP() << "program too short for phase analysis";
    // Interval boundaries drift relative to loop bodies, so compare
    // projected behaviour vectors rather than exact BBVs: recurring
    // phases show up as near-duplicate projections.
    std::vector<std::vector<double>> vecs;
    for (const auto &iv : prof.intervals)
        vecs.push_back(projectBbv(iv.bbv, 32));
    double min_dist = 1e9;
    for (size_t i = 0; i + 1 < vecs.size(); ++i) {
        for (size_t j = i + 1; j < vecs.size(); ++j) {
            double d = 0;
            for (size_t k = 0; k < vecs[i].size(); ++k) {
                const double diff = vecs[i][k] - vecs[j][k];
                d += diff * diff;
            }
            min_dist = std::min(min_dist, d);
        }
    }
    EXPECT_LT(min_dist, 0.05) << p.name;
}

TEST_P(BenchmarkCase, ScalesWithParameters)
{
    const fuzzer::MemoryLayout lay;
    BenchmarkParams small;
    small.outerIterations = 4;
    small.innerIterations = 4;
    BenchmarkParams big;
    big.outerIterations = 16;
    big.innerIterations = 8;
    Program ps, pb;
    switch (GetParam()) {
      case 0:
        ps = buildCoremarkLike(lay, small);
        pb = buildCoremarkLike(lay, big);
        break;
      case 1:
        ps = buildDhrystoneLike(lay, small);
        pb = buildDhrystoneLike(lay, big);
        break;
      default:
        ps = buildMicrobenchLike(lay, small);
        pb = buildMicrobenchLike(lay, big);
        break;
    }
    const auto s = profileBenchmark(ps, lay, 512);
    const auto b = profileBenchmark(pb, lay, 512);
    EXPECT_GT(b.totalInstructions, 2 * s.totalInstructions);
}

std::string
kernelName(const ::testing::TestParamInfo<int> &info)
{
    switch (info.param) {
      case 0: return "coremark";
      case 1: return "dhrystone";
      default: return "microbench";
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, BenchmarkCase,
                         ::testing::Values(0, 1, 2), kernelName);

TEST(Benchmarks, BuildAllReturnsThree)
{
    const fuzzer::MemoryLayout lay;
    const auto all = buildAllBenchmarks(lay);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].name, "coremark-like");
    EXPECT_EQ(all[1].name, "dhrystone-like");
    EXPECT_EQ(all[2].name, "microbench-like");
}

TEST(Bbv, IntervalStartStatesChain)
{
    // Each interval's start state must reproduce the execution: the
    // recorded startPc matches the state's pc.
    const fuzzer::MemoryLayout lay;
    const Program p = buildCoremarkLike(lay);
    const BenchmarkProfile prof = profileBenchmark(p, lay, 512);
    for (const auto &iv : prof.intervals)
        EXPECT_EQ(iv.startState.pc, iv.startPc);
}

} // namespace
} // namespace turbofuzz::deepexplore
