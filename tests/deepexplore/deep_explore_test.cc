/** @file deepExplore controller integration tests. */

#include <gtest/gtest.h>

#include "deepexplore/deep_explore.hh"
#include "harness/campaign.hh"

namespace turbofuzz::deepexplore
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = harness::makeDefaultLibrary();
    return l;
}

BenchmarkParams
smallParams()
{
    BenchmarkParams p;
    p.outerIterations = 8;
    p.innerIterations = 8;
    return p;
}

TEST(BenchmarkRunnerTest, CyclesPrograms)
{
    const fuzzer::MemoryLayout lay;
    BenchmarkRunner runner(buildAllBenchmarks(lay, smallParams()),
                           lay);
    soc::Memory mem;
    const auto i0 = runner.generate(mem);
    const auto i1 = runner.generate(mem);
    EXPECT_GT(i0.generatedInstrs, 100u);
    EXPECT_EQ(i0.entryPc, lay.instrBase);
    // Different programs have different dynamic lengths.
    EXPECT_NE(i0.generatedInstrs, i1.generatedInstrs);
}

TEST(DeepExploreTest, StageOneRunsIntervalsThenHandsOff)
{
    DeepExploreOptions dopts;
    dopts.fuzzer.seed = 5;
    dopts.fuzzer.instrsPerIteration = 800;

    harness::CampaignOptions copts;
    copts.timing = soc::turboFuzzProfile();
    auto gen = std::make_unique<DeepExploreGenerator>(
        dopts, &lib(),
        buildAllBenchmarks(fuzzer::MemoryLayout{}, smallParams()));
    auto *gp = gen.get();
    harness::Campaign c(copts, std::move(gen));

    EXPECT_EQ(gp->stage(), 1u);
    // Run until stage 2 (bounded by iteration count for safety).
    for (int i = 0; i < 400 && gp->stage() == 1; ++i)
        c.runIteration();
    EXPECT_EQ(gp->stage(), 2u);
    EXPECT_GT(gp->markedCount(), 0u);

    // Stage 2 keeps fuzzing productively.
    const uint64_t before = c.coverageMap().totalCovered();
    for (int i = 0; i < 10; ++i)
        c.runIteration();
    EXPECT_GT(c.coverageMap().totalCovered(), before);
}

TEST(DeepExploreTest, IntervalReplayIsTrapFree)
{
    DeepExploreOptions dopts;
    dopts.fuzzer.seed = 6;
    harness::CampaignOptions copts;
    copts.timing = soc::turboFuzzProfile();
    auto gen = std::make_unique<DeepExploreGenerator>(
        dopts, &lib(),
        buildAllBenchmarks(fuzzer::MemoryLayout{}, smallParams()));
    auto *gp = gen.get();
    harness::Campaign c(copts, std::move(gen));
    // Stage-1 intervals reconstruct their context exactly; the
    // replayed benchmark code must not trap.
    for (int i = 0; i < 5 && gp->stage() == 1; ++i) {
        const auto r = c.runIteration();
        EXPECT_EQ(r.traps, 0u) << "interval " << i;
        EXPECT_GT(r.executedTotal, 200u);
    }
}

TEST(DeepExploreTest, MarkedIntervalsBecomeSeeds)
{
    DeepExploreOptions dopts;
    dopts.fuzzer.seed = 7;
    dopts.markThreshold = 1; // mark everything
    dopts.maxMutationRounds = 1;
    harness::CampaignOptions copts;
    copts.timing = soc::turboFuzzProfile();
    auto gen = std::make_unique<DeepExploreGenerator>(
        dopts, &lib(),
        buildAllBenchmarks(fuzzer::MemoryLayout{}, smallParams()));
    auto *gp = gen.get();
    harness::Campaign c(copts, std::move(gen));
    for (int i = 0; i < 400 && gp->stage() == 1; ++i)
        c.runIteration();
    ASSERT_EQ(gp->stage(), 2u);
    EXPECT_GE(gp->markedCount(), 5u); // (nearly) all intervals marked
}

} // namespace
} // namespace turbofuzz::deepexplore
