/** @file Program-builder (mini assembler) tests. */

#include <gtest/gtest.h>

#include "core/iss.hh"
#include "deepexplore/program_builder.hh"
#include "isa/encoding.hh"

namespace turbofuzz::deepexplore
{
namespace
{

TEST(ProgramBuilder, EmitAndLabels)
{
    ProgramBuilder b(0x10000000);
    b.addi(1, 0, 5);
    b.label("loop");
    b.addi(1, 1, -1);
    b.branch(isa::Opcode::Bne, 1, 0, "loop");
    const Program p = b.finish("countdown");

    EXPECT_EQ(p.code.size(), 3u);
    const isa::Decoded br = isa::decode(p.code[2]);
    ASSERT_TRUE(br.valid);
    EXPECT_EQ(br.op, isa::Opcode::Bne);
    EXPECT_EQ(br.ops.imm, -4); // back to "loop"
}

TEST(ProgramBuilder, ForwardReferenceBackpatched)
{
    ProgramBuilder b(0x10000000);
    b.jump(0, "end");
    b.addi(1, 0, 1); // skipped
    b.label("end");
    const Program p = b.finish("fwd");
    const isa::Decoded j = isa::decode(p.code[0]);
    EXPECT_EQ(j.ops.imm, 8);
}

TEST(ProgramBuilder, UndefinedLabelFatal)
{
    ProgramBuilder b(0x10000000);
    b.jump(0, "nowhere");
    EXPECT_EXIT(b.finish("bad"), testing::ExitedWithCode(1),
                "undefined label");
}

/** Property: loadImm materializes any value exactly (ISS-verified). */
class LoadImm : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LoadImm, MaterializesExactly)
{
    const uint64_t value = GetParam();
    ProgramBuilder b(0x10000000);
    b.loadImm(5, value);
    const Program p = b.finish("li");

    soc::Memory mem;
    p.load(mem);
    core::Iss::Options o;
    o.resetPc = p.entry();
    core::Iss hart(&mem, o);
    while (hart.state().pc < p.end())
        ASSERT_FALSE(hart.step().trapped);
    EXPECT_EQ(hart.state().x(5), value);
}

INSTANTIATE_TEST_SUITE_P(
    Values, LoadImm,
    ::testing::Values(0ull, 1ull, 2047ull, 2048ull,
                      0xFFFull, 0x7FFFFFFFull, 0x80000000ull,
                      0xFFFFFFFFull, 0x100000000ull,
                      0xDEADBEEFCAFEF00Dull, ~0ull,
                      0x8000000000000000ull,
                      0x3FF0000000000000ull,
                      0x7FF0000000000000ull));

TEST(ProgramBuilder, LoadRuns)
{
    ProgramBuilder b(0x10000000);
    b.addi(1, 0, 42);
    const Program p = b.finish("p");
    soc::Memory mem;
    p.load(mem);
    EXPECT_EQ(mem.read32(0x10000000), p.code[0]);
    EXPECT_EQ(p.end(), 0x10000004u);
}

} // namespace
} // namespace turbofuzz::deepexplore
