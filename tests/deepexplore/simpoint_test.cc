/** @file SimPoint clustering tests. */

#include <gtest/gtest.h>

#include "deepexplore/simpoint.hh"

namespace turbofuzz::deepexplore
{
namespace
{

IntervalProfile
intervalWithBlocks(std::initializer_list<uint64_t> pcs)
{
    IntervalProfile iv;
    for (uint64_t pc : pcs)
        iv.bbv[pc] += 10;
    iv.instrCount = 512;
    return iv;
}

TEST(SimPointTest, ProjectionIsNormalizedAndStable)
{
    const auto iv = intervalWithBlocks({0x1000, 0x2000, 0x3000});
    const auto a = projectBbv(iv.bbv, 32);
    const auto b = projectBbv(iv.bbv, 32);
    EXPECT_EQ(a, b);
    // Signed contributions may share a dimension and cancel, so the
    // L1 norm is bounded by 1 rather than exactly 1.
    double l1 = 0;
    for (double v : a)
        l1 += std::abs(v);
    EXPECT_GT(l1, 0.0);
    EXPECT_LE(l1, 1.0 + 1e-9);
}

TEST(SimPointTest, EmptyBbvProjectsToZero)
{
    Bbv empty;
    for (double v : projectBbv(empty, 16))
        EXPECT_EQ(v, 0.0);
}

TEST(SimPointTest, FewerIntervalsThanK)
{
    std::vector<IntervalProfile> ivs = {
        intervalWithBlocks({0x1000}),
        intervalWithBlocks({0x2000}),
    };
    const auto pts = selectSimPoints(ivs);
    EXPECT_EQ(pts.size(), 2u);
}

TEST(SimPointTest, SeparatesDistinctPhases)
{
    // Two clearly distinct phases, 6 intervals each; k=2 must place
    // one representative in each phase.
    std::vector<IntervalProfile> ivs;
    for (int i = 0; i < 6; ++i)
        ivs.push_back(intervalWithBlocks({0x1000, 0x1010, 0x1020}));
    for (int i = 0; i < 6; ++i)
        ivs.push_back(intervalWithBlocks({0x9000, 0x9010, 0x9020}));

    SimPointOptions opts;
    opts.k = 2;
    const auto pts = selectSimPoints(ivs, opts);
    ASSERT_EQ(pts.size(), 2u);
    const bool one_low = pts[0].intervalIndex < 6;
    const bool other_high = pts[1].intervalIndex >= 6;
    EXPECT_TRUE(one_low && other_high);
    EXPECT_NEAR(pts[0].weight, 0.5, 0.01);
    EXPECT_NEAR(pts[1].weight, 0.5, 0.01);
}

TEST(SimPointTest, WeightsSumToOne)
{
    std::vector<IntervalProfile> ivs;
    for (uint64_t i = 0; i < 20; ++i)
        ivs.push_back(intervalWithBlocks({0x1000 + 0x100 * (i % 5)}));
    const auto pts = selectSimPoints(ivs);
    double total = 0;
    for (const auto &p : pts)
        total += p.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPointTest, EmptyInputYieldsNoPoints)
{
    EXPECT_TRUE(selectSimPoints({}).empty());
}

} // namespace
} // namespace turbofuzz::deepexplore
