/**
 * @file
 * The batched execution engine's golden equivalence suite.
 *
 * The engine contract (docs/engine.md): for ANY batch size, a
 * campaign produces bit-identical observable results to batch=1 —
 * which is the classic per-commit lockstep loop. These property tests
 * run full campaigns at batch sizes {1, 7, 64, 4096} across the bug
 * catalog's core families and both checking modes, and require
 * byte-equality of everything a campaign can report: coverage totals,
 * counters, the first mismatch (kind / PC / insn / values / commit
 * index), every captured reproducer's serialized bytes, and the full
 * mismatch snapshot (both harts + DUT memory) — the last one is what
 * proves the mid-batch rewind restores machine state exactly.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "engine/execution_engine.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"

namespace turbofuzz::harness
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = makeDefaultLibrary();
    return l;
}

struct RunConfig
{
    core::CoreKind coreKind = core::CoreKind::Rocket;
    core::BugSet bugs;
    bool rv64aEnabled = true;
    checker::DiffChecker::Mode mode =
        checker::DiffChecker::Mode::PerInstruction;
    uint64_t seed = 1;
    double budgetSec = 6.0;
    bool warmStart = true;
};

/** Everything observable about a finished campaign. */
struct RunSummary
{
    uint64_t coverage;
    uint64_t iterations;
    uint64_t executed;
    uint64_t generated;
    uint64_t mismatchedIters;
    double simTime;
    std::vector<Sample> series;

    bool hasMismatch;
    checker::MismatchKind kind;
    uint64_t pc, dutValue, refValue, instrIndex;
    uint32_t insn;

    std::string snapTrigger;
    double snapTime;
    std::vector<uint8_t> snapDutArch, snapRefArch, snapDutMem;

    std::vector<std::vector<uint8_t>> reproducers;
};

RunSummary
runCampaign(const RunConfig &cfg, uint64_t batch)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    opts.coreKind = cfg.coreKind;
    opts.bugs = cfg.bugs;
    opts.rv64aEnabled = cfg.rv64aEnabled;
    opts.checkMode = cfg.mode;
    opts.batchSize = batch;
    opts.warmStart = cfg.warmStart;
    fuzzer::FuzzerOptions fopts;
    fopts.seed = cfg.seed;
    fopts.instrsPerIteration = 1000;
    Campaign c(opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                         fopts, &lib()));
    const TimeSeries series = c.run(cfg.budgetSec);

    RunSummary s{};
    s.coverage = c.coverageMap().totalCovered();
    s.iterations = c.iterations();
    s.executed = c.executedInstructions();
    s.generated = c.generatedInstructions();
    s.mismatchedIters = c.mismatchedIterations();
    s.simTime = c.nowSec();
    s.series = series.samples();

    s.hasMismatch = c.firstMismatch().has_value();
    if (s.hasMismatch) {
        const checker::Mismatch &mm = *c.firstMismatch();
        s.kind = mm.kind;
        s.pc = mm.pc;
        s.insn = mm.insn;
        s.dutValue = mm.dutValue;
        s.refValue = mm.refValue;
        s.instrIndex = mm.instrIndex;

        const soc::Snapshot &snap = c.mismatchSnapshot();
        s.snapTrigger = snap.trigger();
        s.snapTime = snap.captureTime();
        s.snapDutArch = snap.section("dut.arch");
        s.snapRefArch = snap.section("ref.arch");
        s.snapDutMem = snap.section("dut.mem");
    }
    for (const triage::Reproducer &r : c.reproducers())
        s.reproducers.push_back(r.serialize());
    return s;
}

void
expectIdentical(const RunSummary &a, const RunSummary &b,
                const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.mismatchedIters, b.mismatchedIters);
    EXPECT_DOUBLE_EQ(a.simTime, b.simTime);

    ASSERT_EQ(a.series.size(), b.series.size());
    for (size_t i = 0; i < a.series.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.series[i].timeSec, b.series[i].timeSec);
        EXPECT_DOUBLE_EQ(a.series[i].value, b.series[i].value);
    }

    ASSERT_EQ(a.hasMismatch, b.hasMismatch);
    if (a.hasMismatch) {
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.insn, b.insn);
        EXPECT_EQ(a.dutValue, b.dutValue);
        EXPECT_EQ(a.refValue, b.refValue);
        EXPECT_EQ(a.instrIndex, b.instrIndex);
        EXPECT_EQ(a.snapTrigger, b.snapTrigger);
        EXPECT_DOUBLE_EQ(a.snapTime, b.snapTime);
        EXPECT_EQ(a.snapDutArch, b.snapDutArch);
        EXPECT_EQ(a.snapRefArch, b.snapRefArch);
        EXPECT_EQ(a.snapDutMem, b.snapDutMem);
    }
    ASSERT_EQ(a.reproducers.size(), b.reproducers.size());
    for (size_t i = 0; i < a.reproducers.size(); ++i)
        EXPECT_EQ(a.reproducers[i], b.reproducers[i]) << "repro " << i;
}

/** Batched runs must be bit-identical to the lockstep (batch=1) run. */
void
expectBatchInvariant(const RunConfig &cfg, bool expect_mismatch)
{
    const RunSummary lockstep = runCampaign(cfg, 1);
    EXPECT_EQ(lockstep.hasMismatch, expect_mismatch);
    for (const uint64_t batch : {uint64_t{7}, uint64_t{64},
                                 uint64_t{4096}}) {
        const RunSummary batched = runCampaign(cfg, batch);
        expectIdentical(lockstep, batched,
                        ("batch=" + std::to_string(batch)).c_str());
    }
}

TEST(EngineEquivalence, CleanCampaignRocket)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Rocket;
    cfg.seed = 11;
    cfg.budgetSec = 4.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/false);
}

TEST(EngineEquivalence, MinstretMismatchRocket)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Rocket;
    cfg.bugs = core::BugSet::single(core::BugId::R1);
    cfg.seed = 3;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

TEST(EngineEquivalence, FrdMismatchBoom)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Boom;
    cfg.bugs = core::BugSet::single(core::BugId::B1);
    cfg.seed = 4;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

TEST(EngineEquivalence, TrapMismatchBoom)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Boom;
    cfg.bugs = core::BugSet::single(core::BugId::B2);
    cfg.seed = 5;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

TEST(EngineEquivalence, FflagsMismatchCva6)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Cva6;
    cfg.bugs = core::BugSet::single(core::BugId::C1);
    cfg.seed = 6;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

TEST(EngineEquivalence, CsrReadMismatchCva6)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Cva6;
    cfg.bugs = core::BugSet::single(core::BugId::C7);
    cfg.seed = 7;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

TEST(EngineEquivalence, AtomicTrapMismatchCva6)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Cva6;
    cfg.bugs = core::BugSet::single(core::BugId::C8);
    cfg.rv64aEnabled = false;
    cfg.seed = 8;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

TEST(EngineEquivalence, MultiBugCampaignCva6)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Cva6;
    cfg.bugs.enable(core::BugId::C1);
    cfg.bugs.enable(core::BugId::C5);
    cfg.bugs.enable(core::BugId::C9);
    cfg.seed = 9;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

TEST(EngineEquivalence, EndOfIterationModeBoom)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Boom;
    cfg.bugs = core::BugSet::single(core::BugId::B1);
    cfg.mode = checker::DiffChecker::Mode::EndOfIteration;
    cfg.seed = 10;
    cfg.budgetSec = 8.0;
    expectBatchInvariant(cfg, /*expect_mismatch=*/true);
}

/**
 * The warm-start equivalence property suite: a warm-started campaign
 * (post-prefix snapshot restore instead of cold reset + preamble
 * re-execution) must be bit-identical to the cold campaign in
 * everything a campaign can report — coverage, counters, time
 * series, the first mismatch, the full mismatch snapshot (both harts
 * + DUT memory) and every reproducer's serialized bytes. Runs across
 * the bug catalog's core families, both checking modes and multiple
 * batch sizes.
 */
void
expectWarmColdIdentical(RunConfig cfg, bool expect_mismatch)
{
    for (const uint64_t batch : {uint64_t{1}, uint64_t{64}}) {
        cfg.warmStart = false;
        const RunSummary cold = runCampaign(cfg, batch);
        EXPECT_EQ(cold.hasMismatch, expect_mismatch);
        cfg.warmStart = true;
        const RunSummary warmed = runCampaign(cfg, batch);
        expectIdentical(cold, warmed,
                        ("warm batch=" + std::to_string(batch))
                            .c_str());
    }
}

TEST(WarmStartEquivalence, CleanCampaignRocket)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Rocket;
    cfg.seed = 31;
    cfg.budgetSec = 4.0;
    expectWarmColdIdentical(cfg, /*expect_mismatch=*/false);
}

TEST(WarmStartEquivalence, MinstretMismatchRocket)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Rocket;
    cfg.bugs = core::BugSet::single(core::BugId::R1);
    cfg.seed = 3;
    cfg.budgetSec = 8.0;
    expectWarmColdIdentical(cfg, /*expect_mismatch=*/true);
}

TEST(WarmStartEquivalence, FrdMismatchBoom)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Boom;
    cfg.bugs = core::BugSet::single(core::BugId::B1);
    cfg.seed = 4;
    cfg.budgetSec = 8.0;
    expectWarmColdIdentical(cfg, /*expect_mismatch=*/true);
}

TEST(WarmStartEquivalence, TrapMismatchBoom)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Boom;
    cfg.bugs = core::BugSet::single(core::BugId::B2);
    cfg.seed = 5;
    cfg.budgetSec = 8.0;
    expectWarmColdIdentical(cfg, /*expect_mismatch=*/true);
}

TEST(WarmStartEquivalence, AtomicTrapMismatchCva6)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Cva6;
    cfg.bugs = core::BugSet::single(core::BugId::C8);
    cfg.rv64aEnabled = false;
    cfg.seed = 8;
    cfg.budgetSec = 8.0;
    expectWarmColdIdentical(cfg, /*expect_mismatch=*/true);
}

TEST(WarmStartEquivalence, EndOfIterationModeBoom)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Boom;
    cfg.bugs = core::BugSet::single(core::BugId::B1);
    cfg.mode = checker::DiffChecker::Mode::EndOfIteration;
    cfg.seed = 10;
    cfg.budgetSec = 8.0;
    expectWarmColdIdentical(cfg, /*expect_mismatch=*/true);
}

/**
 * Fallback guard: when the step cap is small enough that a cold
 * iteration would abort INSIDE the constant prefix, the warm path
 * must not be taken (it cannot stop mid-prefix) — the campaign falls
 * back to cold for those iterations and stays bit-identical.
 */
TEST(WarmStartEquivalence, StepCapInsidePrefixFallsBackToCold)
{
    auto run_with = [](bool warm_start) {
        CampaignOptions opts;
        opts.timing = soc::turboFuzzProfile();
        opts.warmStart = warm_start;
        // Cap below the 123-commit prefix: every iteration aborts
        // mid-prefix; warm restore would overshoot the cap.
        opts.stepCapFactor = 0.0;
        opts.stepCapSlack = 50;
        fuzzer::FuzzerOptions fopts;
        fopts.seed = 17;
        fopts.instrsPerIteration = 1000;
        Campaign c(opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                             fopts, &lib()));
        for (int i = 0; i < 30; ++i) {
            const IterationResult r = c.runIteration();
            EXPECT_EQ(r.executedTotal, 50u);
        }
        return std::make_tuple(c.coverageMap().totalCovered(),
                               c.executedInstructions(),
                               c.nowSec());
    };
    EXPECT_EQ(run_with(false), run_with(true));
}

/** The warm snapshot must actually be captured and used for a plain
 *  TurboFuzzer campaign (the silent-fallback path must be the
 *  exception, not the rule). */
TEST(WarmStartEquivalence, WarmSnapshotActiveByDefault)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    Campaign on(opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                          fopts, &lib()));
    EXPECT_TRUE(on.warmStartActive());
    for (int i = 0; i < 5; ++i)
        on.runIteration();
    EXPECT_EQ(on.warmIterations(), 5u); // every iteration warm-starts

    opts.warmStart = false;
    Campaign off(opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                           fopts, &lib()));
    EXPECT_FALSE(off.warmStartActive());
}

/** The preamble layout contract the warm capture relies on: the full
 *  preamble begins with the constant warm prefix, and the prefix is
 *  straight-line (no loads/stores/control flow). */
TEST(WarmStartEquivalence, PreamblePrefixContract)
{
    fuzzer::ReplayEnv env;
    const auto prefix = fuzzer::TurboFuzzer::warmPrefixCode(env);
    const auto full = fuzzer::TurboFuzzer::preambleCode(env);
    ASSERT_LE(prefix.size(), full.size());
    for (size_t i = 0; i < prefix.size(); ++i)
        EXPECT_EQ(prefix[i], full[i]) << "prefix word " << i;
    // 3 context instructions + the bootstrap boilerplate.
    EXPECT_EQ(prefix.size(), 3u + env.bootstrapInstrs);
    // The tail is the 32 data-dependent FP loads.
    EXPECT_EQ(full.size(), prefix.size() + 32);
}

/**
 * Direct engine-level probe of the rewind path: drive a mismatching
 * campaign with a batch far larger than the detection index so the
 * divergence is guaranteed to fall mid-batch, then check the engine
 * left the DUT in the exact state a batch=1 campaign stops in.
 */
TEST(EngineEquivalence, MidBatchRewindRestoresHartState)
{
    auto capture = [](uint64_t batch) {
        CampaignOptions opts;
        opts.timing = soc::turboFuzzProfile();
        opts.coreKind = core::CoreKind::Boom;
        opts.bugs = core::BugSet::single(core::BugId::B1);
        opts.batchSize = batch;
        opts.stopOnMismatch = true;
        fuzzer::FuzzerOptions fopts;
        fopts.seed = 4;
        fopts.instrsPerIteration = 1000;
        Campaign c(opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                             fopts, &lib()));
        c.run(30.0);
        EXPECT_TRUE(c.firstMismatch().has_value());
        // Post-mismatch hart state, architecturally complete.
        soc::SnapshotWriter dut_arch, ref_arch;
        c.dut().saveState(dut_arch);
        c.ref().saveState(ref_arch);
        return std::make_pair(dut_arch.takeBuffer(),
                              ref_arch.takeBuffer());
    };
    const auto lockstep = capture(1);
    const auto batched = capture(4096);
    EXPECT_EQ(lockstep.first, batched.first);
    EXPECT_EQ(lockstep.second, batched.second);
}

/**
 * Decimation sanity at the campaign level: a decimated run keeps
 * identical outcomes (counters, coverage, final sample) while
 * recording a bounded subset of the samples.
 */
TEST(EngineEquivalence, SampleDecimationKeepsOutcomes)
{
    auto run_with = [](uint64_t decimation) {
        CampaignOptions opts;
        opts.timing = soc::turboFuzzProfile();
        opts.sampleDecimation = decimation;
        fuzzer::FuzzerOptions fopts;
        fopts.seed = 21;
        fopts.instrsPerIteration = 1000;
        Campaign c(opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                             fopts, &lib()));
        const TimeSeries s = c.run(4.0);
        return std::make_tuple(c.coverageMap().totalCovered(),
                               c.iterations(), s.samples().size(),
                               s.last());
    };
    const auto full = run_with(1);
    const auto decimated = run_with(8);
    EXPECT_EQ(std::get<0>(full), std::get<0>(decimated));
    EXPECT_EQ(std::get<1>(full), std::get<1>(decimated));
    EXPECT_DOUBLE_EQ(std::get<3>(full), std::get<3>(decimated));
    // Bounded growth: every 8th sample plus the exact tail.
    EXPECT_LE(std::get<2>(decimated),
              std::get<2>(full) / 8 + 2);
    EXPECT_GT(std::get<2>(decimated), 0u);
}

// --- Decode-cache equivalence ------------------------------------
//
// The ISS decode cache is a pure speedup: campaigns with the cache
// forced off (TURBOFUZZ_DECODE_CACHE=off) must be bit-identical to
// cached runs — same coverage, same mismatch, same snapshots, same
// reproducers. The env gate is sampled at Iss construction, so the
// guard brackets the whole campaign construction.

/**
 * RAII: pin TURBOFUZZ_DECODE_CACHE (nullptr unsets it = cache on),
 * restoring the ambient value after — the CI off-leg exports the
 * variable globally, and these tests must control both sides.
 */
class ScopedDecodeCacheEnv
{
  public:
    explicit ScopedDecodeCacheEnv(const char *value)
    {
        if (const char *old = getenv("TURBOFUZZ_DECODE_CACHE")) {
            saved = old;
            hadOld = true;
        }
        if (value)
            setenv("TURBOFUZZ_DECODE_CACHE", value, 1);
        else
            unsetenv("TURBOFUZZ_DECODE_CACHE");
    }
    ~ScopedDecodeCacheEnv()
    {
        if (hadOld)
            setenv("TURBOFUZZ_DECODE_CACHE", saved.c_str(), 1);
        else
            unsetenv("TURBOFUZZ_DECODE_CACHE");
    }

  private:
    std::string saved;
    bool hadOld = false;
};

void
expectCacheOnOffIdentical(const RunConfig &cfg)
{
    RunSummary cached;
    {
        ScopedDecodeCacheEnv on(nullptr);
        cached = runCampaign(cfg, 64);
    }
    RunSummary uncachedLockstep, uncachedBatched;
    {
        ScopedDecodeCacheEnv off("off");
        uncachedBatched = runCampaign(cfg, 64);
        uncachedLockstep = runCampaign(cfg, 1);
    }
    expectIdentical(cached, uncachedBatched,
                    "decode cache on vs off (batch 64)");
    expectIdentical(cached, uncachedLockstep,
                    "decode cache on (batch 64) vs off (batch 1)");
}

TEST(DecodeCacheEquivalence, CleanCampaignRocket)
{
    RunConfig cfg;
    cfg.seed = 11;
    cfg.budgetSec = 4.0;
    expectCacheOnOffIdentical(cfg);
}

TEST(DecodeCacheEquivalence, MinstretMismatchRocket)
{
    RunConfig cfg;
    cfg.bugs = core::BugSet::single(core::BugId::R1);
    cfg.seed = 3;
    cfg.budgetSec = 4.0;
    expectCacheOnOffIdentical(cfg);
}

TEST(DecodeCacheEquivalence, MultiBugCampaignCva6)
{
    RunConfig cfg;
    cfg.coreKind = core::CoreKind::Cva6;
    cfg.bugs.enable(core::BugId::C1);
    cfg.bugs.enable(core::BugId::C5);
    cfg.bugs.enable(core::BugId::C9);
    cfg.seed = 9;
    cfg.budgetSec = 4.0;
    expectCacheOnOffIdentical(cfg);
}

} // namespace
} // namespace turbofuzz::harness
