/**
 * @file
 * Barrier / seed-exchange stress tests, sized to provoke races.
 *
 * These run in the ordinary suite as functional tests, but their
 * real job is the TSan CI leg (cmake --preset tsan): every
 * cross-thread handoff the fleet layer relies on is exercised here
 * with enough contention that a missing happens-before edge in
 * WorkerPool / ConcurrentStats / the epoch barrier shows up as a
 * ThreadSanitizer report instead of a one-in-a-million corruption.
 *
 * The invariants under test (docs/static_analysis.md):
 *   - WorkerPool::wait() is a barrier: everything worker threads
 *     wrote before finishing their jobs is visible to the waiter,
 *     including plain (non-atomic) data.
 *   - submit() is safe from multiple threads concurrently, including
 *     while another thread is parked in wait().
 *   - ConcurrentStats tolerates contended adds with concurrent
 *     snapshot readers and loses no counts.
 *   - A live FleetOrchestrator::run() tolerates a monitor thread
 *     polling liveCounters() mid-epoch (the documented use).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/concurrent_stats.hh"
#include "common/fleet_config.hh"
#include "fleet/orchestrator.hh"
#include "fleet/worker_pool.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"

namespace turbofuzz::fleet
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = harness::makeDefaultLibrary();
    return l;
}

/**
 * Epoch churn: each epoch submits one job per slot writing *plain*
 * uint64 slots plus a shared ConcurrentStats; after wait() the main
 * thread reads every slot (and reuses them next epoch). A missing
 * release/acquire edge in the pool's barrier is a TSan hit; a lost
 * job is a value mismatch.
 */
TEST(BarrierStress, WorkerPoolEpochChurnPublishesPlainWrites)
{
    const unsigned threads = 8;
    const unsigned slots = 32;
    const unsigned epochs = 200;

    WorkerPool pool(threads);
    ConcurrentStats stats;
    std::vector<uint64_t> plain(slots, 0); // non-atomic on purpose

    for (unsigned e = 1; e <= epochs; ++e) {
        for (unsigned s = 0; s < slots; ++s) {
            uint64_t *slot = &plain[s];
            pool.submit([slot, e, &stats] {
                // Read-modify-write of the previous epoch's value:
                // also checks the main thread's inter-epoch writes
                // are visible to workers (submit is a release).
                *slot += e;
                stats.addIteration(1, 1, false);
            });
        }
        pool.wait();
        const uint64_t expect =
            static_cast<uint64_t>(e) * (e + 1) / 2;
        for (unsigned s = 0; s < slots; ++s)
            ASSERT_EQ(plain[s], expect) << "slot " << s
                                        << " epoch " << e;
    }
    EXPECT_EQ(stats.snapshot().iterations,
              uint64_t{slots} * epochs);
}

/** Concurrent submitters + a waiter: the multi-producer pattern the
 *  distributed fleet (ROADMAP item 1) will lean on. */
TEST(BarrierStress, ConcurrentSubmittersSingleWaiter)
{
    const unsigned submitters = 6;
    const unsigned per_thread = 500;

    WorkerPool pool(4);
    std::atomic<uint64_t> done{0};

    std::vector<std::thread> producers;
    producers.reserve(submitters);
    for (unsigned t = 0; t < submitters; ++t) {
        producers.emplace_back([&pool, &done] {
            for (unsigned i = 0; i < per_thread; ++i)
                pool.submit([&done] {
                    done.fetch_add(1, std::memory_order_relaxed);
                });
        });
    }
    for (std::thread &t : producers)
        t.join();
    pool.wait();
    EXPECT_EQ(done.load(), uint64_t{submitters} * per_thread);
}

/** Contended adds with a concurrent snapshot reader; totals exact. */
TEST(BarrierStress, ConcurrentStatsContendedAddsLoseNothing)
{
    const unsigned writers = 8;
    const unsigned adds = 20000;

    ConcurrentStats stats;
    std::atomic<bool> stop{false};

    std::thread reader([&] {
        uint64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const StatsSnapshot s = stats.snapshot();
            // Monotone while only adders run.
            ASSERT_GE(s.iterations, last);
            last = s.iterations;
        }
    });

    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (unsigned t = 0; t < writers; ++t) {
        threads.emplace_back([&stats] {
            for (unsigned i = 0; i < adds; ++i)
                stats.addIteration(3, 2, (i & 1023) == 0);
        });
    }
    for (std::thread &t : threads)
        t.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    const StatsSnapshot s = stats.snapshot();
    EXPECT_EQ(s.iterations, uint64_t{writers} * adds);
    EXPECT_EQ(s.executedInstrs, uint64_t{writers} * adds * 3);
    EXPECT_EQ(s.generatedInstrs, uint64_t{writers} * adds * 2);
    EXPECT_EQ(s.mismatches,
              uint64_t{writers} * ((adds + 1023) / 1024));
}

/**
 * Regression: the fleet hands every shard thread the same library
 * through a const pointer, so const accessors must be genuinely
 * read-only. InstructionLibrary used to rebuild its active-set
 * lazily from pick()/contains()/active() under a mutable dirty
 * flag — two shards' first draws raced on the rebuild (found by
 * FleetRunWithLiveCounterMonitor under TSan). Rebuilds are now
 * eager in the constructor and mutators; this pins the fix by
 * hammering every const accessor from concurrent threads.
 */
TEST(BarrierStress, SharedInstructionLibraryConstReadsAreRaceFree)
{
    isa::InstructionLibrary shared = harness::makeDefaultLibrary();
    shared.setExtWeight(isa::Ext::M, 2.0); // mutate after construction
    const isa::InstructionLibrary &view = shared;

    const unsigned threads = 8;
    std::vector<std::thread> readers;
    readers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        readers.emplace_back([&view, t] {
            Rng rng(0x1000 + t);
            for (int i = 0; i < 2000; ++i) {
                const isa::Opcode op = view.pick(rng);
                ASSERT_TRUE(view.contains(op));
                ASSERT_GT(view.activeCount(), 0u);
            }
        });
    }
    for (auto &r : readers)
        r.join();
}

/**
 * A real fleet run — shard epochs on worker threads, barrier merges,
 * broadcast seed exchange — with a monitor thread polling the live
 * counters the whole time. This is the path that stretches into the
 * multi-process fleet; it must be TSan-clean end to end.
 */
TEST(BarrierStress, FleetRunWithLiveCounterMonitor)
{
    FleetConfig fc;
    fc.fleetSeed = 99;
    fc.shardCount = 4;
    fc.budgetSec = 2.0;
    fc.epochSec = 0.25; // many barriers -> many exchanges
    fc.exchangeTopK = 2;

    harness::CampaignOptions co;
    co.timing = soc::turboFuzzProfile();
    fuzzer::FuzzerOptions fo;
    fo.instrsPerIteration = 500;

    FleetOrchestrator orch(fc, co, fo, &lib());

    std::atomic<bool> stop{false};
    std::thread monitor([&] {
        uint64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const StatsSnapshot s = orch.liveCounters();
            ASSERT_GE(s.iterations, last);
            last = s.iterations;
            std::this_thread::yield();
        }
    });

    const FleetResult result = orch.run();
    stop.store(true, std::memory_order_release);
    monitor.join();

    EXPECT_GT(result.totals.iterations, 0u);
    // The monitor must have observed a consistent final state.
    EXPECT_EQ(orch.liveCounters().iterations,
              result.totals.iterations);
}

} // namespace
} // namespace turbofuzz::fleet
