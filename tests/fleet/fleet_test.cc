/** @file Fleet orchestrator tests: determinism, merge, exchange. */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/fleet_config.hh"
#include "fleet/orchestrator.hh"
#include "fleet/worker_pool.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"

namespace turbofuzz::fleet
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = harness::makeDefaultLibrary();
    return l;
}

harness::CampaignOptions
campaignOpts()
{
    harness::CampaignOptions o;
    o.timing = soc::turboFuzzProfile();
    return o;
}

fuzzer::FuzzerOptions
fuzzerOpts(uint32_t ipi = 1000)
{
    fuzzer::FuzzerOptions o;
    o.instrsPerIteration = ipi;
    return o;
}

FleetConfig
fleetConfig(unsigned shards, double budget = 3.0,
            double epoch = 0.75, uint64_t seed = 7)
{
    FleetConfig fc;
    fc.fleetSeed = seed;
    fc.shardCount = shards;
    fc.budgetSec = budget;
    fc.epochSec = epoch;
    return fc;
}

TEST(FleetConfigTest, ShardSeedDerivation)
{
    FleetConfig fc;
    fc.fleetSeed = 42;
    // Shard 0 inherits the fleet seed (single-shard identity).
    EXPECT_EQ(fc.shardSeed(0), 42u);
    // Other shards get decorrelated, deterministic streams.
    EXPECT_NE(fc.shardSeed(1), 42u);
    EXPECT_NE(fc.shardSeed(1), fc.shardSeed(2));
    EXPECT_EQ(fc.shardSeed(3), fc.shardSeed(3));
}

TEST(FleetConfigTest, EpochGrid)
{
    FleetConfig fc;
    fc.budgetSec = 10.0;
    fc.epochSec = 3.0;
    EXPECT_EQ(fc.epochCount(), 4u);
    EXPECT_DOUBLE_EQ(fc.epochDeadline(0), 3.0);
    EXPECT_DOUBLE_EQ(fc.epochDeadline(3), 10.0); // clamped to budget
    fc.epochSec = 5.0;
    EXPECT_EQ(fc.epochCount(), 2u);
}

TEST(FleetConfigTest, FromConfigParsesTopology)
{
    Config cfg;
    cfg.set("shards", "8");
    cfg.set("topology", "broadcast");
    cfg.set("epoch", "1.5");
    const FleetConfig fc = FleetConfig::fromConfig(cfg);
    EXPECT_EQ(fc.shardCount, 8u);
    EXPECT_EQ(fc.topology, ExchangeTopology::Broadcast);
    EXPECT_DOUBLE_EQ(fc.epochSec, 1.5);
}

TEST(FleetConfigTest, FromConfigParsesFeedbackKnobs)
{
    Config cfg;
    cfg.set("coverage-model", "composite");
    cfg.set("scheduler", "bandit");
    const FleetConfig fc = FleetConfig::fromConfig(cfg);
    EXPECT_EQ(fc.coverageModel,
              coverage::CoverageModelKind::Composite);
    EXPECT_EQ(fc.scheduler, fuzzer::SchedulerKind::Bandit);

    // Defaults reproduce the paper configuration.
    Config plain;
    const FleetConfig def = FleetConfig::fromConfig(plain);
    EXPECT_EQ(def.coverageModel, coverage::CoverageModelKind::Mux);
    EXPECT_EQ(def.scheduler, fuzzer::SchedulerKind::Static);
}

TEST(WorkerPoolTest, RunsAllJobsAndBarriers)
{
    WorkerPool pool(4);
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 16; ++i)
            pool.submit([&counter] {
                counter.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
        EXPECT_EQ(counter.load(), 16 * (round + 1));
    }
}

TEST(SyncPolicyTest, RingRotatesAndBroadcastCoversAll)
{
    SyncPolicy ring(ExchangeTopology::Ring, 4, 0.0);
    // Epoch 0: hop 1 -> shard 2 imports from shard 1.
    EXPECT_EQ(ring.importSources(2, 4, 0),
              std::vector<unsigned>{1});
    // Epoch 1: hop 2 -> shard 2 imports from shard 0.
    EXPECT_EQ(ring.importSources(2, 4, 1),
              std::vector<unsigned>{0});
    // Hop never selects self: over N-1 epochs, sources cycle peers.
    for (uint64_t e = 0; e < 6; ++e) {
        const auto src = ring.importSources(0, 4, e);
        ASSERT_EQ(src.size(), 1u);
        EXPECT_NE(src[0], 0u);
    }

    SyncPolicy bcast(ExchangeTopology::Broadcast, 4, 0.0);
    const auto all = bcast.importSources(1, 4, 0);
    EXPECT_EQ(all, (std::vector<unsigned>{0, 2, 3}));

    SyncPolicy none(ExchangeTopology::None, 4, 0.0);
    EXPECT_TRUE(none.importSources(1, 4, 0).empty());
    // Single shard: no peers under any topology.
    EXPECT_TRUE(ring.importSources(0, 1, 0).empty());
}

/**
 * Acceptance: a 1-shard fleet reproduces the exact coverage
 * trajectory of a plain Campaign::run() with the same seed.
 */
TEST(FleetOrchestratorTest, SingleShardMatchesPlainCampaign)
{
    const uint64_t seed = 7;
    const double budget = 3.0;

    harness::CampaignOptions copts = campaignOpts();
    copts.seed = seed;
    fuzzer::FuzzerOptions fopts = fuzzerOpts();
    fopts.seed = seed;
    harness::Campaign plain(
        copts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib()));
    const TimeSeries reference = plain.run(budget);

    // Sliced into 4 epochs through the orchestrator.
    FleetOrchestrator orch(fleetConfig(1, budget, budget / 4, seed),
                           campaignOpts(), fuzzerOpts(), &lib());
    const FleetResult r = orch.run();

    ASSERT_EQ(r.shardCoverage.size(), 1u);
    const auto &ref = reference.samples();
    const auto &got = r.shardCoverage[0].samples();
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_DOUBLE_EQ(ref[i].timeSec, got[i].timeSec) << i;
        EXPECT_DOUBLE_EQ(ref[i].value, got[i].value) << i;
    }
    EXPECT_EQ(r.mergedFinalCoverage,
              plain.coverageMap().totalCovered());
    EXPECT_EQ(r.totals.iterations, plain.iterations());
    EXPECT_EQ(r.totals.executedInstrs,
              plain.executedInstructions());
}

/**
 * Acceptance: on the same per-shard budget, a 4-shard fleet's merged
 * coverage strictly exceeds the best single shard's.
 */
TEST(FleetOrchestratorTest, FourShardsBeatBestSingleShard)
{
    FleetOrchestrator orch(fleetConfig(4), campaignOpts(),
                           fuzzerOpts(), &lib());
    const FleetResult r = orch.run();

    double best_shard = 0.0;
    for (const TimeSeries &s : r.shardCoverage)
        best_shard = std::max(best_shard, s.last());
    EXPECT_GT(static_cast<double>(r.mergedFinalCoverage),
              best_shard);
    // The merged map is a union: at least as large as every shard.
    for (const TimeSeries &s : r.shardCoverage)
        EXPECT_GE(static_cast<double>(r.mergedFinalCoverage),
                  s.last());
}

/**
 * Acceptance: fleet runs are deterministic for a fixed (fleet seed,
 * shard count, epoch length) regardless of thread scheduling.
 */
TEST(FleetOrchestratorTest, RepeatedRunsAreIdentical)
{
    auto run_fleet = [](unsigned threads) {
        FleetConfig fc = fleetConfig(3, 2.25, 0.75, 11);
        fc.workerThreads = threads; // vary scheduling pressure
        FleetOrchestrator orch(fc, campaignOpts(), fuzzerOpts(),
                               &lib());
        return orch.run();
    };
    const FleetResult a = run_fleet(3);
    const FleetResult b = run_fleet(1); // fully serialized schedule

    ASSERT_EQ(a.mergedCoverage.samples().size(),
              b.mergedCoverage.samples().size());
    for (size_t i = 0; i < a.mergedCoverage.samples().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.mergedCoverage.samples()[i].value,
                         b.mergedCoverage.samples()[i].value);
    }
    EXPECT_EQ(a.mergedFinalCoverage, b.mergedFinalCoverage);
    EXPECT_EQ(a.totals.iterations, b.totals.iterations);
    EXPECT_EQ(a.totals.executedInstrs, b.totals.executedInstrs);
    EXPECT_EQ(a.totals.mismatches, b.totals.mismatches);
    EXPECT_EQ(a.seedsExchanged, b.seedsExchanged);
    EXPECT_EQ(a.seedsAdmitted, b.seedsAdmitted);
    ASSERT_EQ(a.mismatches.size(), b.mismatches.size());
    for (size_t i = 0; i < a.mismatches.size(); ++i) {
        EXPECT_EQ(a.mismatches[i].shard, b.mismatches[i].shard);
        EXPECT_EQ(a.mismatches[i].mismatch.pc,
                  b.mismatches[i].mismatch.pc);
    }
}

TEST(FleetOrchestratorTest, SyncCostChargedEvenWithoutExchange)
{
    // The coverage-readback round trip costs simulated time at every
    // barrier, even when no seeds travel (topology None).
    FleetConfig fc = fleetConfig(2, 2.0, 0.5);
    fc.topology = ExchangeTopology::None;
    fc.syncCostSec = 0.25;
    FleetOrchestrator orch(fc, campaignOpts(), fuzzerOpts(), &lib());
    const FleetResult r = orch.run();
    EXPECT_EQ(r.seedsExchanged, 0u);
    // Mid-run sync charges displace fuzzing time (deadlines are
    // absolute); the final barrier's charge lands past the budget,
    // so the clock ends at >= budget + one sync cost.
    for (unsigned i = 0; i < 2; ++i)
        EXPECT_GE(orch.shard(i).campaign().nowSec(), 2.25);
    // A 1-shard fleet never pays the round trip.
    FleetConfig solo = fleetConfig(1, 2.0, 0.5);
    solo.syncCostSec = 0.25;
    FleetOrchestrator solo_orch(solo, campaignOpts(), fuzzerOpts(),
                                &lib());
    solo_orch.run();
    EXPECT_LT(solo_orch.shard(0).campaign().nowSec(), 2.25);
}

TEST(FleetOrchestratorTest, SeedExchangeMovesSeeds)
{
    FleetConfig fc = fleetConfig(2, 3.0, 0.5);
    fc.topology = ExchangeTopology::Broadcast;
    FleetOrchestrator orch(fc, campaignOpts(), fuzzerOpts(), &lib());
    const FleetResult r = orch.run();
    EXPECT_GT(r.seedsExchanged, 0u);
    // Admission is corpus-controlled, so admitted <= exchanged.
    EXPECT_LE(r.seedsAdmitted, r.seedsExchanged);
}

TEST(FleetOrchestratorTest, HarvestsInjectedBugMismatches)
{
    harness::CampaignOptions copts = campaignOpts();
    copts.coreKind = core::CoreKind::Boom;
    copts.bugs = core::BugSet::single(core::BugId::B1);
    FleetOrchestrator orch(fleetConfig(2, 30.0, 5.0), copts,
                           fuzzerOpts(), &lib());
    const FleetResult r = orch.run();
    // With the bug in every shard's DUT, at least one shard trips.
    EXPECT_GE(r.mismatches.size(), 1u);
    EXPECT_GT(r.totals.mismatches, 0u);
    for (const ShardMismatch &sm : r.mismatches)
        EXPECT_LT(sm.shard, 2u);
}

TEST(FleetOrchestratorTest, FleetSamplesAndThroughputRecorded)
{
    FleetOrchestrator orch(fleetConfig(2, 3.0, 1.0), campaignOpts(),
                           fuzzerOpts(), &lib());
    const FleetResult r = orch.run();
    EXPECT_EQ(r.epochs, 3u);
    EXPECT_EQ(r.mergedCoverage.samples().size(), 3u);
    EXPECT_EQ(r.throughput.samples().size(), 3u);
    EXPECT_EQ(r.prevalence.samples().size(), 3u);
    // Merged coverage is monotone across epochs.
    double prev = 0.0;
    for (const auto &s : r.mergedCoverage.samples()) {
        EXPECT_GE(s.value, prev);
        prev = s.value;
    }
    // Prevalence of the on-fabric profile stays high. The Fig. 8
    // band is ~0.97 at 4,000 instrs/iteration; these shards run
    // 1,000-instr iterations, so the fixed bootstrap weighs ~4x
    // more.
    EXPECT_GT(r.prevalence.last(), 0.8);
    EXPECT_GT(r.totals.iterations, 0u);
    EXPECT_GT(r.hostSeconds, 0.0);
}

/** Everything two fleet results must agree on to count as
 *  bit-identical. */
void
expectFleetResultsIdentical(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.totals.iterations, b.totals.iterations);
    EXPECT_EQ(a.totals.executedInstrs, b.totals.executedInstrs);
    EXPECT_EQ(a.totals.generatedInstrs, b.totals.generatedInstrs);
    EXPECT_EQ(a.totals.mismatches, b.totals.mismatches);
    EXPECT_EQ(a.mergedFinalCoverage, b.mergedFinalCoverage);
    EXPECT_EQ(a.seedsExchanged, b.seedsExchanged);
    EXPECT_EQ(a.seedsAdmitted, b.seedsAdmitted);
    EXPECT_EQ(a.reproducersHarvested, b.reproducersHarvested);

    auto expect_series_equal = [](const TimeSeries &x,
                                  const TimeSeries &y,
                                  const char *what) {
        SCOPED_TRACE(what);
        ASSERT_EQ(x.samples().size(), y.samples().size());
        for (size_t i = 0; i < x.samples().size(); ++i) {
            EXPECT_DOUBLE_EQ(x.samples()[i].timeSec,
                             y.samples()[i].timeSec)
                << i;
            EXPECT_DOUBLE_EQ(x.samples()[i].value,
                             y.samples()[i].value)
                << i;
        }
    };
    expect_series_equal(a.mergedCoverage, b.mergedCoverage,
                        "merged coverage");
    expect_series_equal(a.throughput, b.throughput, "throughput");
    expect_series_equal(a.prevalence, b.prevalence, "prevalence");
    ASSERT_EQ(a.shardCoverage.size(), b.shardCoverage.size());
    for (size_t i = 0; i < a.shardCoverage.size(); ++i)
        expect_series_equal(a.shardCoverage[i], b.shardCoverage[i],
                            "shard coverage");

    ASSERT_EQ(a.mismatches.size(), b.mismatches.size());
    for (size_t i = 0; i < a.mismatches.size(); ++i) {
        EXPECT_EQ(a.mismatches[i].shard, b.mismatches[i].shard);
        EXPECT_EQ(a.mismatches[i].mismatch.pc,
                  b.mismatches[i].mismatch.pc);
        EXPECT_EQ(a.mismatches[i].mismatch.instrIndex,
                  b.mismatches[i].mismatch.instrIndex);
        EXPECT_DOUBLE_EQ(a.mismatches[i].simTimeSec,
                         b.mismatches[i].simTimeSec);
    }
    ASSERT_EQ(a.bugTable.size(), b.bugTable.size());
    for (size_t i = 0; i < a.bugTable.size(); ++i) {
        EXPECT_EQ(a.bugTable[i].signature, b.bugTable[i].signature);
        EXPECT_EQ(a.bugTable[i].hits, b.bugTable[i].hits);
        EXPECT_DOUBLE_EQ(a.bugTable[i].firstDetectSimTime,
                         b.bugTable[i].firstDetectSimTime);
        EXPECT_EQ(a.bugTable[i].minimizedInstrs,
                  b.bugTable[i].minimizedInstrs);
        EXPECT_EQ(a.bugTable[i].replays, b.bugTable[i].replays);
    }
}

/**
 * Acceptance: a fleet killed mid-campaign and resumed from its epoch
 * checkpoint produces results identical to an uninterrupted run —
 * counters, every time series, the mismatch harvest and the
 * minimized per-bug table. Exercises seed exchange (broadcast),
 * triage harvest and a buggy DUT so every checkpointed subsystem
 * carries real state across the kill.
 */
TEST(FleetCheckpoint, ResumedRunMatchesUninterrupted)
{
    const std::string path =
        testing::TempDir() + "/tf_fleet_resume.ckpt";

    auto config = [&](bool checkpointing) {
        FleetConfig fc = fleetConfig(2, 6.0, 1.5, 11);
        fc.topology = ExchangeTopology::Broadcast;
        fc.exchangeTopK = 4;
        fc.maxReproducersPerShard = 8;
        fc.triageReplayBudget = 32;
        if (checkpointing) {
            fc.checkpointEveryEpochs = 1;
            fc.checkpointPath = path;
        }
        return fc;
    };
    harness::CampaignOptions copts = campaignOpts();
    copts.coreKind = core::CoreKind::Cva6;
    copts.bugs.enable(core::BugId::C1);
    copts.bugs.enable(core::BugId::C5);

    // Reference: uninterrupted run.
    FleetOrchestrator uninterrupted(config(false), copts,
                                    fuzzerOpts(), &lib());
    const FleetResult reference = uninterrupted.run();
    ASSERT_GT(reference.totals.mismatches, 0u);

    // Killed run: same fleet, halted after epoch 2 with a checkpoint
    // written at every barrier.
    {
        FleetConfig fc = config(true);
        fc.haltAfterEpochs = 2;
        FleetOrchestrator killed(fc, copts, fuzzerOpts(), &lib());
        killed.run();
    }

    // Resume: a FRESH orchestrator restores the on-disk checkpoint
    // (no state survives from the killed instance) and runs to the
    // budget.
    std::string error;
    const auto snap = soc::Snapshot::tryLoadFile(path, &error);
    ASSERT_TRUE(snap.has_value()) << error;
    FleetOrchestrator resumed(config(false), copts, fuzzerOpts(),
                              &lib());
    ASSERT_TRUE(resumed.restoreCheckpoint(*snap, &error)) << error;
    const FleetResult final_result = resumed.run();

    expectFleetResultsIdentical(reference, final_result);
    std::remove(path.c_str());
}

/** Malformed or mismatched checkpoints must be rejected gracefully —
 *  no crash, no allocation blow-up, a diagnostic instead. */
TEST(FleetCheckpoint, MalformedCheckpointRejected)
{
    harness::CampaignOptions copts = campaignOpts();
    std::string error;

    // Not a snapshot at all.
    {
        FleetOrchestrator orch(fleetConfig(2), copts, fuzzerOpts(),
                               &lib());
        soc::Snapshot empty;
        EXPECT_FALSE(orch.restoreCheckpoint(empty, &error));
        EXPECT_NE(error.find("missing section"), std::string::npos);
    }

    // A checkpoint taken with a different shard count.
    {
        FleetConfig small = fleetConfig(2, 3.0, 0.75, 7);
        small.haltAfterEpochs = 1;
        FleetOrchestrator donor(small, copts, fuzzerOpts(), &lib());
        donor.run();
        const auto snap = donor.makeCheckpoint(&error);
        ASSERT_TRUE(snap.has_value()) << error;

        FleetOrchestrator three(fleetConfig(3), copts, fuzzerOpts(),
                                &lib());
        EXPECT_FALSE(three.restoreCheckpoint(*snap, &error));
        EXPECT_NE(error.find("shard count"), std::string::npos);

        // Corrupted shard section: truncate one shard's state.
        soc::Snapshot corrupt = *snap;
        corrupt.setSection("fleet.shard.1", {1, 2, 3});
        FleetOrchestrator fresh(fleetConfig(2, 3.0, 0.75, 7), copts,
                                fuzzerOpts(), &lib());
        EXPECT_FALSE(fresh.restoreCheckpoint(corrupt, &error));
        EXPECT_FALSE(error.empty());

        // Wrong fleet seed.
        FleetOrchestrator reseeded(fleetConfig(2, 3.0, 0.75, 8),
                                   copts, fuzzerOpts(), &lib());
        EXPECT_FALSE(reseeded.restoreCheckpoint(*snap, &error));
        EXPECT_NE(error.find("seed"), std::string::npos);
    }
}

/**
 * Pluggable feedback at fleet scale: per-model merges at epoch
 * barriers produce the global union views, and a killed fleet
 * resumes bit-identically with the model + scheduler state carried
 * through the checkpoint's fleet.feedback and shard sections.
 */
TEST(FleetFeedback, PerModelMergeAndResumeDeterminism)
{
    const std::string path =
        testing::TempDir() + "/tf_fleet_feedback.ckpt";

    auto config = [&](bool checkpointing) {
        FleetConfig fc = fleetConfig(2, 4.0, 1.0, 17);
        fc.coverageModel = coverage::CoverageModelKind::Composite;
        fc.scheduler = fuzzer::SchedulerKind::Bandit;
        if (checkpointing) {
            fc.checkpointEveryEpochs = 1;
            fc.checkpointPath = path;
        }
        return fc;
    };
    const harness::CampaignOptions copts = campaignOpts();

    FleetOrchestrator reference(config(false), copts, fuzzerOpts(),
                                &lib());
    const FleetResult ref_result = reference.run();

    // Global per-model views exist and dominate every shard's own.
    ASSERT_NE(reference.globalCsrCoverage(), nullptr);
    ASSERT_NE(reference.globalHitCoverage(), nullptr);
    EXPECT_GT(reference.globalCsrCoverage()->newlyHit(), 0u);
    EXPECT_GT(reference.globalHitCoverage()->newlyHit(), 0u);
    for (unsigned i = 0; i < 2; ++i) {
        EXPECT_GE(
            reference.globalCsrCoverage()->newlyHit(),
            reference.shard(i).campaign().csrModel()->newlyHit());
        EXPECT_GE(reference.globalHitCoverage()->newlyHit(),
                  reference.shard(i)
                      .campaign()
                      .hitCountModel()
                      ->newlyHit());
    }

    // Kill after 2 epochs, then resume a fresh orchestrator from the
    // on-disk checkpoint; the combined run must match uninterrupted.
    {
        FleetConfig fc = config(true);
        fc.haltAfterEpochs = 2;
        FleetOrchestrator killed(fc, copts, fuzzerOpts(), &lib());
        killed.run();
    }
    std::string error;
    const auto snap = soc::Snapshot::tryLoadFile(path, &error);
    ASSERT_TRUE(snap.has_value()) << error;
    FleetOrchestrator resumed(config(false), copts, fuzzerOpts(),
                              &lib());
    ASSERT_TRUE(resumed.restoreCheckpoint(*snap, &error)) << error;
    const FleetResult final_result = resumed.run();

    EXPECT_EQ(final_result.mergedFinalCoverage,
              ref_result.mergedFinalCoverage);
    EXPECT_EQ(final_result.totals.iterations,
              ref_result.totals.iterations);
    EXPECT_EQ(final_result.totals.executedInstrs,
              ref_result.totals.executedInstrs);
    EXPECT_EQ(resumed.globalCsrCoverage()->newlyHit(),
              reference.globalCsrCoverage()->newlyHit());
    EXPECT_EQ(resumed.globalHitCoverage()->newlyHit(),
              reference.globalHitCoverage()->newlyHit());

    // A default-configured fleet refuses this checkpoint: its model
    // census disagrees.
    FleetOrchestrator plain(fleetConfig(2, 4.0, 1.0, 17), copts,
                            fuzzerOpts(), &lib());
    EXPECT_FALSE(plain.restoreCheckpoint(*snap, &error));
    EXPECT_NE(error.find("coverage-model"), std::string::npos);
    std::remove(path.c_str());
}

/**
 * Bugfix regression: under broadcast exchange the same top-K seeds
 * are re-offered at every barrier; content-hash dedup on import must
 * keep shard corpora free of duplicate stimuli across epochs.
 */
TEST(FleetSeedExchange, BroadcastDoesNotFloodCorporaWithDuplicates)
{
    FleetConfig fc = fleetConfig(3, 6.0, 0.75, 13);
    fc.topology = ExchangeTopology::Broadcast;
    fc.exchangeTopK = 6;
    FleetOrchestrator orch(fc, campaignOpts(), fuzzerOpts(), &lib());
    const FleetResult r = orch.run();
    ASSERT_GT(r.seedsExchanged, 0u);

    for (unsigned i = 0; i < orch.shardCount(); ++i) {
        auto *gen = dynamic_cast<fuzzer::TurboFuzzGenerator *>(
            &orch.shard(i).campaign().generator());
        ASSERT_NE(gen, nullptr);
        const fuzzer::Corpus &corpus = gen->underlying().corpus();
        // Corpus stays within capacity and holds no two seeds with
        // identical content.
        EXPECT_LE(corpus.size(), corpus.capacity());
        std::set<uint64_t> hashes;
        for (const fuzzer::Seed &s : corpus.entries())
            EXPECT_TRUE(hashes.insert(s.contentHash()).second)
                << "duplicate stimulus in shard " << i;
        // The dedup actually fired: broadcast re-offers previously
        // imported seeds every barrier.
        EXPECT_GT(corpus.duplicateImports(), 0u) << "shard " << i;
    }
}

/**
 * Tentpole acceptance (docs/fleet.md "Epoch barrier anatomy"): the
 * default delta barrier — parallel dirty-word publication, tree
 * reduction on the pool, zero-copy seed exchange, overlapped I/O —
 * must produce a fleet result AND global model state byte-identical
 * to the serial full-merge reference path.
 */
TEST(FleetDelta, DeltaBarrierMatchesSerialBarrierByteIdentical)
{
    auto config = [](bool delta) {
        FleetConfig fc = fleetConfig(4, 3.0, 0.75, 23);
        fc.coverageModel = coverage::CoverageModelKind::Composite;
        fc.topology = ExchangeTopology::Broadcast;
        fc.exchangeTopK = 4;
        fc.provenance = true;
        fc.deltaBarrier = delta;
        return fc;
    };
    const harness::CampaignOptions copts = campaignOpts();

    FleetOrchestrator with_delta(config(true), copts, fuzzerOpts(),
                                 &lib());
    const FleetResult delta_result = with_delta.run();
    FleetOrchestrator serial(config(false), copts, fuzzerOpts(),
                             &lib());
    const FleetResult serial_result = serial.run();

    expectFleetResultsIdentical(delta_result, serial_result);
    ASSERT_GT(delta_result.seedsExchanged, 0u);

    // Global feedback-model state, byte for byte.
    auto state_bytes = [](const auto &model) {
        soc::SnapshotWriter w;
        model.saveState(w);
        return w.takeBuffer();
    };
    EXPECT_EQ(state_bytes(with_delta.globalCoverage()),
              state_bytes(serial.globalCoverage()));
    ASSERT_NE(with_delta.globalCsrCoverage(), nullptr);
    EXPECT_EQ(state_bytes(*with_delta.globalCsrCoverage()),
              state_bytes(*serial.globalCsrCoverage()));
    ASSERT_NE(with_delta.globalHitCoverage(), nullptr);
    EXPECT_EQ(state_bytes(*with_delta.globalHitCoverage()),
              state_bytes(*serial.globalHitCoverage()));

    // Global first-hit ledger: identical deterministic attributions
    // (wallNs is informational host time and excluded).
    const auto d_entries =
        with_delta.provenanceLedger().sortedEntries();
    const auto s_entries = serial.provenanceLedger().sortedEntries();
    ASSERT_GT(d_entries.size(), 0u);
    ASSERT_EQ(d_entries.size(), s_entries.size());
    for (size_t i = 0; i < d_entries.size(); ++i) {
        EXPECT_EQ(d_entries[i].first, s_entries[i].first);
        EXPECT_DOUBLE_EQ(d_entries[i].second.simTimeSec,
                         s_entries[i].second.simTimeSec);
        EXPECT_EQ(d_entries[i].second.shard,
                  s_entries[i].second.shard);
        EXPECT_EQ(d_entries[i].second.iteration,
                  s_entries[i].second.iteration);
        EXPECT_EQ(d_entries[i].second.seedId,
                  s_entries[i].second.seedId);
        EXPECT_EQ(d_entries[i].second.op, s_entries[i].second.op);
    }
}

/** The barrier phase instrumentation lands in the result: one
 *  barrier/merge timing entry per completed epoch, and the phase
 *  counters exist in the merged metrics. */
TEST(FleetDelta, BarrierTimingRecordedPerEpoch)
{
    FleetConfig fc = fleetConfig(2, 2.0, 0.5, 3);
    FleetOrchestrator orch(fc, campaignOpts(), fuzzerOpts(), &lib());
    const FleetResult r = orch.run();

    EXPECT_EQ(r.epochBarrierNs.size(), r.epochs);
    EXPECT_EQ(r.epochMergeNs.size(), r.epochs);
    for (size_t e = 0; e < r.epochBarrierNs.size(); ++e)
        EXPECT_GE(r.epochBarrierNs[e], r.epochMergeNs[e]);
    EXPECT_GT(r.metrics.counterValue("fleet.barrier.merge_ns"), 0u);
    // Counters exist even when their phase did no work this run
    // (absent names return the fallback, so distinct fallbacks
    // disagree only for a missing counter).
    auto has_counter = [&](const char *name) {
        return r.metrics.counterValue(name, 1) ==
               r.metrics.counterValue(name, 2);
    };
    EXPECT_TRUE(has_counter("fleet.barrier.reduce_ns"));
    EXPECT_TRUE(has_counter("fleet.barrier.exchange_ns"));
    EXPECT_TRUE(has_counter("fleet.barrier.io_overlap_ns"));
}

/**
 * Barrier stress (runs under the TSan CI preset via the Fleet*
 * filter): many short epochs with per-epoch checkpoint shipping and
 * JSONL stats force the double-buffered background writer to overlap
 * live barriers continuously; worker threads outnumber shards so the
 * reduction tree schedules across surplus workers.
 */
TEST(FleetDelta, BarrierStressOverlappedIoAndReduction)
{
    const std::string ckpt =
        testing::TempDir() + "/tf_fleet_stress.ckpt";
    const std::string stats =
        testing::TempDir() + "/tf_fleet_stress.jsonl";

    FleetConfig fc = fleetConfig(6, 2.0, 0.25, 31);
    fc.coverageModel = coverage::CoverageModelKind::Composite;
    fc.workerThreads = 8;
    fc.checkpointEveryEpochs = 1;
    fc.checkpointPath = ckpt;
    fc.statsFile = stats;
    FleetOrchestrator orch(fc, campaignOpts(), fuzzerOpts(), &lib());
    const FleetResult r = orch.run();
    EXPECT_EQ(r.epochBarrierNs.size(), r.epochs);

    // The final checkpoint is fully on disk once run() returns (the
    // writer is drained), and it restores cleanly.
    std::string error;
    const auto snap = soc::Snapshot::tryLoadFile(ckpt, &error);
    ASSERT_TRUE(snap.has_value()) << error;

    // Every barrier emitted one complete stats line (cadence 0).
    std::FILE *f = std::fopen(stats.c_str(), "r");
    ASSERT_NE(f, nullptr);
    unsigned lines = 0;
    for (int c; (c = std::fgetc(f)) != EOF;)
        lines += c == '\n';
    std::fclose(f);
    EXPECT_EQ(lines, r.epochs);

    std::remove(ckpt.c_str());
    std::remove(stats.c_str());
}

} // namespace
} // namespace turbofuzz::fleet
