/** @file Direct-mode block construction and mutation tests. */

#include <gtest/gtest.h>

#include "fuzzer/block_builder.hh"
#include "harness/campaign.hh"
#include "isa/disasm.hh"

namespace turbofuzz::fuzzer
{
namespace
{

class BlockBuilderTest : public ::testing::Test
{
  protected:
    BlockBuilderTest()
        : lib(isa::InstructionLibrary{}),
          builder(layout, &lib, GenProbs{}), rng(7)
    {
        lib.exclude(isa::Opcode::Mret);
    }

    MemoryLayout layout;
    isa::InstructionLibrary lib;
    BlockBuilder builder;
    Rng rng;
};

TEST_F(BlockBuilderTest, EveryBlockDecodesCompletely)
{
    for (int i = 0; i < 2000; ++i) {
        const SeedBlock b = builder.buildRandomBlock(rng);
        ASSERT_FALSE(b.insns.empty());
        ASSERT_LT(b.primeIdx, b.insns.size());
        for (uint32_t w : b.insns)
            EXPECT_TRUE(isa::decode(w).valid)
                << isa::disassemble(w);
    }
}

TEST_F(BlockBuilderTest, ControlFlowFlagMatchesPrime)
{
    int cf_blocks = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const SeedBlock b = builder.buildRandomBlock(rng);
        const isa::Decoded d = isa::decode(b.insns[b.primeIdx]);
        EXPECT_EQ(b.isControlFlow, d.desc->isControlFlow());
        cf_blocks += b.isControlFlow;
    }
    // The control-flow share steers toward the paper's 1:5-ish mix.
    const double share = static_cast<double>(cf_blocks) / n;
    EXPECT_GT(share, 0.30);
    EXPECT_LT(share, 0.55);
}

TEST_F(BlockBuilderTest, MemoryBlocksStageTheirOwnAddress)
{
    // Memory primes must use the scratch register staged inside the
    // block (never rely on live-in register state).
    for (int i = 0; i < 3000; ++i) {
        const SeedBlock b = builder.buildRandomBlock(rng);
        const isa::Decoded d = isa::decode(b.insns[b.primeIdx]);
        if (!d.desc->isMemAccess())
            continue;
        EXPECT_EQ(d.ops.rs1, MemoryLayout::regScratch)
            << isa::disassemble(b.insns[b.primeIdx]);
        // A staging instruction writing x30 precedes the prime.
        bool staged = false;
        for (uint32_t k = 0; k < b.primeIdx; ++k) {
            const isa::Decoded s = isa::decode(b.insns[k]);
            staged |= s.valid &&
                      s.ops.rd == MemoryLayout::regScratch &&
                      s.desc->has(isa::FlagWritesRd);
        }
        EXPECT_TRUE(staged);
    }
}

TEST_F(BlockBuilderTest, AtomicsAreAlignmentMasked)
{
    for (int i = 0; i < 4000; ++i) {
        const SeedBlock b = builder.buildRandomBlock(rng);
        const isa::Decoded d = isa::decode(b.insns[b.primeIdx]);
        if (!d.desc->has(isa::FlagAtomic))
            continue;
        // An andi x30, x30, -size precedes the prime.
        bool masked = false;
        for (uint32_t k = 0; k < b.primeIdx; ++k) {
            const isa::Decoded s = isa::decode(b.insns[k]);
            masked |= s.valid && s.op == isa::Opcode::Andi &&
                      s.ops.rd == MemoryLayout::regScratch &&
                      (s.ops.imm == -4 || s.ops.imm == -8);
        }
        EXPECT_TRUE(masked)
            << isa::disassemble(b.insns[b.primeIdx]);
        EXPECT_EQ(d.ops.imm, 0);
    }
}

TEST_F(BlockBuilderTest, CsrPrimesAvoidMtvec)
{
    for (int i = 0; i < 4000; ++i) {
        const SeedBlock b = builder.buildRandomBlock(rng);
        const isa::Decoded d = isa::decode(b.insns[b.primeIdx]);
        if (d.valid && d.desc->has(isa::FlagCsr))
            EXPECT_NE(d.ops.csr, isa::csr::mtvec);
    }
}

TEST_F(BlockBuilderTest, MutationPreservesOpcodeAndValidity)
{
    for (int i = 0; i < 2000; ++i) {
        SeedBlock b = builder.buildRandomBlock(rng);
        const isa::Opcode before =
            isa::decode(b.insns[b.primeIdx]).op;
        builder.mutateOperands(b, rng);
        const isa::Decoded after = isa::decode(b.insns[b.primeIdx]);
        ASSERT_TRUE(after.valid);
        EXPECT_EQ(after.op, before);
    }
}

TEST_F(BlockBuilderTest, MutationKeepsMemoryAddressingBound)
{
    for (int i = 0; i < 4000; ++i) {
        SeedBlock b = builder.buildRandomBlock(rng);
        const isa::Decoded before = isa::decode(b.insns[b.primeIdx]);
        if (!before.desc->isMemAccess())
            continue;
        for (int m = 0; m < 8; ++m)
            builder.mutateOperands(b, rng);
        const isa::Decoded after = isa::decode(b.insns[b.primeIdx]);
        EXPECT_EQ(after.ops.rs1, MemoryLayout::regScratch);
        EXPECT_EQ(after.ops.imm, before.ops.imm);
    }
}

TEST(PcrelHiLo, SplitsCorrectly)
{
    for (int64_t delta : {0l, 4l, -4l, 2047l, 2048l, -2048l, -2049l,
                          0x12345l, -0x54321l, (1l << 30)}) {
        int64_t hi, lo;
        pcrelHiLo(delta, hi, lo);
        EXPECT_EQ((hi << 12) + lo, delta) << delta;
        EXPECT_GE(lo, -2048);
        EXPECT_LE(lo, 2047);
    }
}

TEST(GenProbsTest, ValidRmOnlyProducesNoReservedModes)
{
    isa::InstructionLibrary lib;
    lib.exclude(isa::Opcode::Mret);
    GenProbs probs;
    probs.validRmOnly = true;
    MemoryLayout layout;
    BlockBuilder builder(layout, &lib, probs);
    Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        const SeedBlock b = builder.buildRandomBlock(rng);
        const isa::Decoded d = isa::decode(b.insns[b.primeIdx]);
        if (d.desc->has(isa::FlagHasRm))
            EXPECT_LT(d.ops.rm, 5);
    }
}

} // namespace
} // namespace turbofuzz::fuzzer
