/** @file Global execution context metadata tests. */

#include <gtest/gtest.h>

#include "fuzzer/context.hh"

namespace turbofuzz::fuzzer
{
namespace
{

TEST(FuzzContext, RecordsBlocksAndCounts)
{
    MemoryLayout lay;
    FuzzContext ctx(lay);
    EXPECT_EQ(ctx.blockCount(), 0u);
    EXPECT_EQ(ctx.nextAddress(), lay.instrBase);

    const uint32_t b0 = ctx.recordBlock(lay.instrBase, 4);
    EXPECT_EQ(b0, 0u);
    EXPECT_EQ(ctx.cumulativeInstrCount(), 4u);
    EXPECT_EQ(ctx.nextAddress(), lay.instrBase + 16);

    const uint32_t b1 = ctx.recordBlock(lay.instrBase + 16, 2);
    EXPECT_EQ(b1, 1u);
    EXPECT_EQ(ctx.blockAddress(0), lay.instrBase);
    EXPECT_EQ(ctx.blockAddress(1), lay.instrBase + 16);
}

TEST(FuzzContext, FinalizeRecordsBoundary)
{
    MemoryLayout lay;
    FuzzContext ctx(lay);
    ctx.recordBlock(lay.instrBase, 8);
    ctx.finalize();
    EXPECT_EQ(ctx.codeBoundary(), lay.instrBase + 32);
}

TEST(FuzzContext, BeginIterationResets)
{
    MemoryLayout lay;
    FuzzContext ctx(lay);
    ctx.recordBlock(lay.instrBase, 8);
    ctx.beginIteration();
    EXPECT_EQ(ctx.blockCount(), 0u);
    EXPECT_EQ(ctx.cumulativeInstrCount(), 0u);
    EXPECT_EQ(ctx.nextAddress(), lay.instrBase);
}

TEST(FuzzContext, HasRoomChecksSegmentBounds)
{
    MemoryLayout lay;
    lay.instrSize = 64; // 16 instructions
    FuzzContext ctx(lay);
    EXPECT_TRUE(ctx.hasRoom(16));
    EXPECT_FALSE(ctx.hasRoom(17));
    ctx.recordBlock(lay.instrBase, 10);
    EXPECT_TRUE(ctx.hasRoom(6));
    EXPECT_FALSE(ctx.hasRoom(7));
}

TEST(FuzzContext, MisalignedBlockPanics)
{
    MemoryLayout lay;
    FuzzContext ctx(lay);
    EXPECT_DEATH(ctx.recordBlock(lay.instrBase + 2, 1),
                 "word aligned");
}

TEST(FuzzContext, OutOfSegmentBlockPanics)
{
    MemoryLayout lay;
    FuzzContext ctx(lay);
    EXPECT_DEATH(ctx.recordBlock(lay.instrBase + lay.instrSize, 1),
                 "escapes");
}

TEST(MemoryLayoutTest, DefaultsBelowTwoGiB)
{
    // lui/auipc materialization relies on all segments sitting below
    // 2 GiB (sign-extension safety).
    MemoryLayout lay;
    EXPECT_LT(lay.instrBase + lay.instrSize, 1ull << 31);
    EXPECT_LT(lay.dataBase + lay.dataSize, 1ull << 31);
    EXPECT_LT(lay.handlerBase, 1ull << 31);
    // Segments must not overlap.
    EXPECT_LE(lay.instrBase + lay.instrSize, lay.handlerBase);
    EXPECT_LE(lay.handlerBase + 4096, lay.dataBase);
}

} // namespace
} // namespace turbofuzz::fuzzer
