/** @file Corpus scheduling tests (§IV-D semantics). */

#include <gtest/gtest.h>

#include <map>

#include "fuzzer/corpus.hh"

namespace turbofuzz::fuzzer
{
namespace
{

Seed
seedWithId(uint64_t id)
{
    Seed s;
    s.id = id;
    SeedBlock b;
    b.insns = {0x13};
    s.blocks.push_back(b);
    return s;
}

TEST(Corpus, FifoEvictsOldest)
{
    Corpus c(2, SchedulingPolicy::Fifo);
    EXPECT_TRUE(c.offer(seedWithId(1), 10));
    EXPECT_TRUE(c.offer(seedWithId(2), 0)); // FIFO admits anything
    EXPECT_TRUE(c.offer(seedWithId(3), 5)); // evicts seed 1
    EXPECT_EQ(c.size(), 2u);
    bool has1 = false, has3 = false;
    for (const Seed &s : c.entries()) {
        has1 |= s.id == 1;
        has3 |= s.id == 3;
    }
    EXPECT_FALSE(has1);
    EXPECT_TRUE(has3);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Corpus, CoverageGuidedRejectsNonImproving)
{
    Corpus c(4, SchedulingPolicy::CoverageGuided);
    EXPECT_FALSE(c.offer(seedWithId(1), 0)); // no improvement
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.rejections(), 1u);
    EXPECT_TRUE(c.offer(seedWithId(2), 3));
    EXPECT_EQ(c.size(), 1u);
}

TEST(Corpus, CoverageGuidedReplacesWeakest)
{
    Corpus c(2, SchedulingPolicy::CoverageGuided);
    c.offer(seedWithId(1), 10);
    c.offer(seedWithId(2), 50);
    // A newcomer better than the weakest replaces it...
    EXPECT_TRUE(c.offer(seedWithId(3), 20));
    bool has1 = false;
    for (const Seed &s : c.entries())
        has1 |= s.id == 1;
    EXPECT_FALSE(has1);
    // ...but a weaker one is rejected.
    EXPECT_FALSE(c.offer(seedWithId(4), 5));
    EXPECT_EQ(c.size(), 2u);
}

TEST(Corpus, PaperScenarioKeepsProductiveOldSeed)
{
    // The Fig. 5 scenario: an old seed that still improves coverage
    // must survive a stream of mediocre newcomers under coverage
    // scheduling, but dies under FIFO.
    Corpus guided(3, SchedulingPolicy::CoverageGuided);
    Corpus fifo(3, SchedulingPolicy::Fifo);
    guided.offer(seedWithId(100), 500); // valuable old seed
    fifo.offer(seedWithId(100), 500);
    for (uint64_t i = 0; i < 10; ++i) {
        guided.offer(seedWithId(i), 1 + i % 3);
        fifo.offer(seedWithId(i), 1 + i % 3);
    }
    bool guided_has = false, fifo_has = false;
    for (const Seed &s : guided.entries())
        guided_has |= s.id == 100;
    for (const Seed &s : fifo.entries())
        fifo_has |= s.id == 100;
    EXPECT_TRUE(guided_has);
    EXPECT_FALSE(fifo_has);
}

TEST(Corpus, UpdateIncrementRefreshesSeed)
{
    Corpus c(4, SchedulingPolicy::CoverageGuided);
    c.offer(seedWithId(1), 10);
    c.updateIncrement(1, 99);
    EXPECT_EQ(c.entries()[0].coverageIncrement, 99u);
    // Unknown id is a no-op (seed may have been evicted).
    c.updateIncrement(555, 1);
}

TEST(Corpus, PrioritizedSelectionPrefersHighIncrement)
{
    Corpus c(8, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 8; ++i)
        c.offer(seedWithId(i), i * 10);

    Rng rng(7);
    int high = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        const Seed &s = c.select(rng, {3, 4});
        if (s.coverageIncrement >= 70) // top quartile: ids 7, 8
            ++high;
    }
    // 3/4 prioritized (always top quartile) + 1/4 uniform (2/8).
    const double expected = 0.75 + 0.25 * 2.0 / 8.0;
    EXPECT_NEAR(static_cast<double>(high) / trials, expected, 0.05);
}

TEST(Corpus, UniformSelectionWhenNotPrioritizing)
{
    Corpus c(4, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 4; ++i)
        c.offer(seedWithId(i), i);
    Rng rng(3);
    std::map<uint64_t, int> hits;
    for (int t = 0; t < 4000; ++t)
        hits[c.select(rng, {0, 1}).id]++;
    for (uint64_t i = 1; i <= 4; ++i)
        EXPECT_NEAR(hits[i] / 4000.0, 0.25, 0.05) << i;
}

TEST(Corpus, AddBaselineBypassesAdmission)
{
    Corpus c(2, SchedulingPolicy::CoverageGuided);
    c.addBaseline(seedWithId(1)); // zero increment, still admitted
    EXPECT_EQ(c.size(), 1u);
    c.addBaseline(seedWithId(2));
    c.addBaseline(seedWithId(3)); // evicts oldest baseline
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Corpus, SelectFromEmptyPanics)
{
    Corpus c(2, SchedulingPolicy::Fifo);
    Rng rng(1);
    EXPECT_DEATH((void)c.select(rng), "empty corpus");
}

} // namespace
} // namespace turbofuzz::fuzzer
