/** @file Corpus scheduling tests (§IV-D semantics). */

#include <gtest/gtest.h>

#include <map>

#include "fuzzer/corpus.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fuzzer
{
namespace
{

Seed
seedWithId(uint64_t id)
{
    Seed s;
    s.id = id;
    SeedBlock b;
    // Distinct stimulus per id: imports deduplicate by content hash,
    // so seeds that should be independently admissible must differ
    // in content, not just in id.
    b.insns = {0x13, static_cast<uint32_t>(0x100013 + (id << 20))};
    s.blocks.push_back(b);
    return s;
}

TEST(Corpus, FifoEvictsOldest)
{
    Corpus c(2, SchedulingPolicy::Fifo);
    EXPECT_TRUE(c.offer(seedWithId(1), 10));
    EXPECT_TRUE(c.offer(seedWithId(2), 0)); // FIFO admits anything
    EXPECT_TRUE(c.offer(seedWithId(3), 5)); // evicts seed 1
    EXPECT_EQ(c.size(), 2u);
    bool has1 = false, has3 = false;
    for (const Seed &s : c.entries()) {
        has1 |= s.id == 1;
        has3 |= s.id == 3;
    }
    EXPECT_FALSE(has1);
    EXPECT_TRUE(has3);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Corpus, CoverageGuidedRejectsNonImproving)
{
    Corpus c(4, SchedulingPolicy::CoverageGuided);
    EXPECT_FALSE(c.offer(seedWithId(1), 0)); // no improvement
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.rejections(), 1u);
    EXPECT_TRUE(c.offer(seedWithId(2), 3));
    EXPECT_EQ(c.size(), 1u);
}

TEST(Corpus, CoverageGuidedReplacesWeakest)
{
    Corpus c(2, SchedulingPolicy::CoverageGuided);
    c.offer(seedWithId(1), 10);
    c.offer(seedWithId(2), 50);
    // A newcomer better than the weakest replaces it...
    EXPECT_TRUE(c.offer(seedWithId(3), 20));
    bool has1 = false;
    for (const Seed &s : c.entries())
        has1 |= s.id == 1;
    EXPECT_FALSE(has1);
    // ...but a weaker one is rejected.
    EXPECT_FALSE(c.offer(seedWithId(4), 5));
    EXPECT_EQ(c.size(), 2u);
}

TEST(Corpus, PaperScenarioKeepsProductiveOldSeed)
{
    // The Fig. 5 scenario: an old seed that still improves coverage
    // must survive a stream of mediocre newcomers under coverage
    // scheduling, but dies under FIFO.
    Corpus guided(3, SchedulingPolicy::CoverageGuided);
    Corpus fifo(3, SchedulingPolicy::Fifo);
    guided.offer(seedWithId(100), 500); // valuable old seed
    fifo.offer(seedWithId(100), 500);
    for (uint64_t i = 0; i < 10; ++i) {
        guided.offer(seedWithId(i), 1 + i % 3);
        fifo.offer(seedWithId(i), 1 + i % 3);
    }
    bool guided_has = false, fifo_has = false;
    for (const Seed &s : guided.entries())
        guided_has |= s.id == 100;
    for (const Seed &s : fifo.entries())
        fifo_has |= s.id == 100;
    EXPECT_TRUE(guided_has);
    EXPECT_FALSE(fifo_has);
}

TEST(Corpus, UpdateIncrementRefreshesSeed)
{
    Corpus c(4, SchedulingPolicy::CoverageGuided);
    c.offer(seedWithId(1), 10);
    c.updateIncrement(1, 99);
    EXPECT_EQ(c.entries()[0].coverageIncrement, 99u);
    // Unknown id is a no-op (seed may have been evicted).
    c.updateIncrement(555, 1);
}

TEST(Corpus, PrioritizedSelectionPrefersHighIncrement)
{
    Corpus c(8, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 8; ++i)
        c.offer(seedWithId(i), i * 10);

    Rng rng(7);
    int high = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        const Seed *s = c.trySelect(rng, {3, 4});
        ASSERT_NE(s, nullptr);
        if (s->coverageIncrement >= 70) // top quartile: ids 7, 8
            ++high;
    }
    // 3/4 prioritized (always top quartile) + 1/4 uniform (2/8).
    const double expected = 0.75 + 0.25 * 2.0 / 8.0;
    EXPECT_NEAR(static_cast<double>(high) / trials, expected, 0.05);
}

TEST(Corpus, UniformSelectionWhenNotPrioritizing)
{
    Corpus c(4, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 4; ++i)
        c.offer(seedWithId(i), i);
    Rng rng(3);
    std::map<uint64_t, int> hits;
    for (int t = 0; t < 4000; ++t)
        hits[c.trySelect(rng, {0, 1})->id]++;
    for (uint64_t i = 1; i <= 4; ++i)
        EXPECT_NEAR(hits[i] / 4000.0, 0.25, 0.05) << i;
}

TEST(Corpus, AddBaselineBypassesAdmission)
{
    Corpus c(2, SchedulingPolicy::CoverageGuided);
    c.addBaseline(seedWithId(1)); // zero increment, still admitted
    EXPECT_EQ(c.size(), 1u);
    c.addBaseline(seedWithId(2));
    c.addBaseline(seedWithId(3)); // evicts oldest baseline
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Corpus, PrioritizedSelectionDistributionUnchanged)
{
    // Regression for the nth_element fast path: selection must stay
    // uniform over the top-quartile *set*, i.e. each of the top-2
    // seeds (of 8) is picked with p = 0.75/2 + 0.25/8, and every
    // lower seed with p = 0.25/8.
    Corpus c(8, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 8; ++i)
        c.offer(seedWithId(i), i * 10);

    Rng rng(11);
    std::map<uint64_t, int> hits;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t)
        hits[c.trySelect(rng, {3, 4})->id]++;

    const double top_p = 0.75 / 2.0 + 0.25 / 8.0;
    const double low_p = 0.25 / 8.0;
    for (uint64_t i = 1; i <= 8; ++i) {
        const double p = static_cast<double>(hits[i]) / trials;
        EXPECT_NEAR(p, i >= 7 ? top_p : low_p, 0.02) << "seed " << i;
    }
}

TEST(Corpus, UpdateIncrementSurvivesEvictionChurn)
{
    Corpus c(3, SchedulingPolicy::CoverageGuided);
    c.offer(seedWithId(1), 10);
    c.offer(seedWithId(2), 20);
    c.offer(seedWithId(3), 30);
    // Churn: 1 evicted by 4, then 2 evicted by 5.
    EXPECT_TRUE(c.offer(seedWithId(4), 40));
    EXPECT_TRUE(c.offer(seedWithId(5), 50));
    EXPECT_EQ(c.evictions(), 2u);

    // Updating evicted ids is a no-op...
    c.updateIncrement(1, 999);
    c.updateIncrement(2, 999);
    for (const Seed &s : c.entries())
        EXPECT_NE(s.coverageIncrement, 999u);

    // ...while survivors are found through the id index, including
    // seeds that landed in recycled slots.
    c.updateIncrement(3, 31);
    c.updateIncrement(4, 41);
    c.updateIncrement(5, 51);
    for (const Seed &s : c.entries())
        EXPECT_EQ(s.coverageIncrement, s.id * 10 + 1);

    // More churn after updates: the index stays consistent.
    EXPECT_TRUE(c.offer(seedWithId(6), 60));
    c.updateIncrement(6, 61);
    bool found6 = false;
    for (const Seed &s : c.entries()) {
        if (s.id == 6) {
            found6 = true;
            EXPECT_EQ(s.coverageIncrement, 61u);
        }
    }
    EXPECT_TRUE(found6);
}

TEST(Corpus, ExportTopReturnsBestByIncrement)
{
    Corpus c(8, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 6; ++i)
        c.offer(seedWithId(i), i * 10);
    const std::vector<Seed> top = c.exportTop(3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].id, 6u);
    EXPECT_EQ(top[1].id, 5u);
    EXPECT_EQ(top[2].id, 4u);
    // Asking for more than resident returns everything.
    EXPECT_EQ(c.exportTop(100).size(), 6u);
    // Export copies; the corpus is untouched.
    EXPECT_EQ(c.size(), 6u);
}

TEST(Corpus, ExportTopBreaksTiesByAge)
{
    Corpus c(4, SchedulingPolicy::CoverageGuided);
    c.offer(seedWithId(10), 50);
    c.offer(seedWithId(11), 50);
    c.offer(seedWithId(12), 50);
    const std::vector<Seed> top = c.exportTop(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].id, 10u); // oldest first among equals
    EXPECT_EQ(top[1].id, 11u);
}

TEST(Corpus, ImportSeedsRemapsIdsAndHonorsAdmission)
{
    Corpus donor(4, SchedulingPolicy::CoverageGuided);
    donor.offer(seedWithId(1), 100);
    donor.offer(seedWithId(2), 200);

    Corpus receiver(4, SchedulingPolicy::CoverageGuided);
    // Local id 1 already taken — by a *different* stimulus, so the
    // import exercises the id remap rather than content dedup.
    Seed local = seedWithId(100);
    local.id = 1;
    receiver.offer(std::move(local), 5);

    uint64_t next_id = 1000;
    const size_t admitted =
        receiver.importSeeds(donor.exportTop(2), next_id);
    EXPECT_EQ(admitted, 2u);
    EXPECT_EQ(next_id, 1002u);
    EXPECT_EQ(receiver.size(), 3u);

    // Imported seeds carry their increments but fresh local ids; the
    // pre-existing local seed id 1 is untouched.
    int local1 = 0;
    for (const Seed &s : receiver.entries()) {
        EXPECT_TRUE(s.id == 1 || s.id >= 1000);
        if (s.id == 1) {
            ++local1;
            EXPECT_EQ(s.coverageIncrement, 5u);
        }
    }
    EXPECT_EQ(local1, 1);

    // The id index works for imported seeds too.
    receiver.updateIncrement(1001, 777);
    bool found = false;
    for (const Seed &s : receiver.entries())
        found |= s.coverageIncrement == 777;
    EXPECT_TRUE(found);
}

TEST(Corpus, ImportIntoFullCorpusEvictsWeakest)
{
    Corpus receiver(2, SchedulingPolicy::CoverageGuided);
    receiver.offer(seedWithId(1), 1);
    receiver.offer(seedWithId(2), 1000);

    Corpus donor(2, SchedulingPolicy::CoverageGuided);
    donor.offer(seedWithId(7), 500);

    uint64_t next_id = 50;
    EXPECT_EQ(receiver.importSeeds(donor.exportTop(1), next_id), 1u);
    // The weak local seed (increment 1) was evicted, the strong one
    // survives alongside the import.
    EXPECT_EQ(receiver.size(), 2u);
    bool has_strong = false, has_import = false;
    for (const Seed &s : receiver.entries()) {
        has_strong |= s.id == 2;
        has_import |= s.id == 50;
    }
    EXPECT_TRUE(has_strong);
    EXPECT_TRUE(has_import);
}

TEST(Corpus, SelectFromEmptyReturnsNull)
{
    // Satellite hardening: an empty corpus is a recoverable
    // condition (misconfigured campaign), not a process abort — the
    // caller turns the nullptr into a diagnostic.
    Corpus c(2, SchedulingPolicy::Fifo);
    Rng rng(1);
    EXPECT_EQ(c.trySelect(rng), nullptr);
    Corpus guided(2, SchedulingPolicy::CoverageGuided);
    EXPECT_EQ(guided.trySelect(rng, {3, 4}), nullptr);

    // Once a seed arrives, selection works again.
    guided.offer(seedWithId(1), 5);
    const Seed *s = guided.trySelect(rng, {3, 4});
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->id, 1u);
}

TEST(Corpus, FindSeedById)
{
    Corpus c(2, SchedulingPolicy::CoverageGuided);
    c.offer(seedWithId(1), 10);
    c.offer(seedWithId(2), 20);
    ASSERT_NE(c.findSeed(2), nullptr);
    EXPECT_EQ(c.findSeed(2)->coverageIncrement, 20u);
    EXPECT_EQ(c.findSeed(99), nullptr);
    // Eviction invalidates the id.
    EXPECT_TRUE(c.offer(seedWithId(3), 30)); // evicts seed 1
    EXPECT_EQ(c.findSeed(1), nullptr);
    ASSERT_NE(c.findSeed(3), nullptr);
}

TEST(Corpus, PrioritizeUniformSplitMatchesProbability)
{
    // Statistical pin of the dual-strategy split itself: with
    // prioritize probability p, the top-quartile set (2 of 8 seeds)
    // receives p + (1-p) * 2/8 of the picks. Checked at p = 1/2 so
    // both branches contribute comparably.
    Corpus c(8, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 8; ++i)
        c.offer(seedWithId(i), i * 10);
    Rng rng(23);
    int top = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        if (c.trySelect(rng, {1, 2})->coverageIncrement >= 70)
            ++top;
    }
    const double expected = 0.5 + 0.5 * 2.0 / 8.0;
    EXPECT_NEAR(static_cast<double>(top) / trials, expected, 0.02);
}

TEST(Seed, ContentHashIgnoresSchedulingMetadata)
{
    Seed a = seedWithId(5);
    Seed b = a;
    b.id = 99;
    b.coverageIncrement = 1234;
    b.insertedAt = 42;
    EXPECT_EQ(a.contentHash(), b.contentHash());

    // Any content field change moves the hash.
    Seed c = a;
    c.blocks[0].insns[0] ^= 1;
    EXPECT_NE(a.contentHash(), c.contentHash());
    Seed d = a;
    d.blocks[0].targetBlock = 3;
    EXPECT_NE(a.contentHash(), d.contentHash());
}

TEST(Corpus, ImportDeduplicatesByContent)
{
    // Bugfix regression: re-identified imports of the same stimulus
    // must not be re-admitted as "new" every epoch (the broadcast
    // flooding bug). The second import of an identical batch admits
    // nothing and allocates no ids.
    Corpus donor(4, SchedulingPolicy::CoverageGuided);
    donor.offer(seedWithId(1), 100);
    donor.offer(seedWithId(2), 200);

    Corpus receiver(8, SchedulingPolicy::CoverageGuided);
    uint64_t next_id = 1000;
    EXPECT_EQ(receiver.importSeeds(donor.exportTop(2), next_id), 2u);
    EXPECT_EQ(next_id, 1002u);
    EXPECT_EQ(receiver.importSeeds(donor.exportTop(2), next_id), 0u);
    EXPECT_EQ(next_id, 1002u); // no ids burned on duplicates
    EXPECT_EQ(receiver.size(), 2u);
    EXPECT_EQ(receiver.duplicateImports(), 2u);

    // Duplicates inside one imported batch collapse too.
    std::vector<Seed> batch = {seedWithId(3), seedWithId(3)};
    for (Seed &s : batch)
        s.coverageIncrement = 30; // pass coverage-guided admission
    EXPECT_EQ(receiver.importSeeds(std::move(batch), next_id), 1u);
    EXPECT_EQ(receiver.size(), 3u);
    EXPECT_EQ(receiver.duplicateImports(), 3u);
}

TEST(Corpus, SaveLoadStateRoundTrip)
{
    Corpus c(8, SchedulingPolicy::CoverageGuided);
    for (uint64_t i = 1; i <= 5; ++i)
        c.offer(seedWithId(i), i * 7);
    uint64_t next_id = 50;
    c.importSeeds({seedWithId(40)}, next_id);

    soc::SnapshotWriter w;
    c.saveState(w);
    const auto image = w.takeBuffer();

    Corpus back(8, SchedulingPolicy::CoverageGuided);
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(back.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());

    ASSERT_EQ(back.size(), c.size());
    for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(back.entries()[i].id, c.entries()[i].id);
        EXPECT_EQ(back.entries()[i].coverageIncrement,
                  c.entries()[i].coverageIncrement);
        EXPECT_EQ(back.entries()[i].insertedAt,
                  c.entries()[i].insertedAt);
        EXPECT_EQ(back.entries()[i].contentHash(),
                  c.entries()[i].contentHash());
    }
    EXPECT_EQ(back.evictions(), c.evictions());
    EXPECT_EQ(back.rejections(), c.rejections());
    EXPECT_EQ(back.duplicateImports(), c.duplicateImports());

    // The restored id index works (updateIncrement is O(1) via it).
    back.updateIncrement(back.entries()[0].id, 777);
    EXPECT_EQ(back.entries()[0].coverageIncrement, 777u);

    // Malformed: a seed count beyond capacity is rejected before any
    // allocation.
    soc::SnapshotWriter bad;
    bad.putU64(0);
    bad.putU64(0);
    bad.putU64(0);
    bad.putU64(0);
    bad.putU32(0xFFFFFFFFu);
    const auto bad_image = bad.takeBuffer();
    soc::SnapshotReader bad_reader(bad_image);
    Corpus victim(8, SchedulingPolicy::CoverageGuided);
    EXPECT_FALSE(victim.loadState(bad_reader, &error));
    EXPECT_NE(error.find("capacity"), std::string::npos);
}

} // namespace
} // namespace turbofuzz::fuzzer
