/** @file Exception-template (trap handler) tests. */

#include <gtest/gtest.h>

#include "core/iss.hh"
#include "fuzzer/exception_templates.hh"
#include "isa/csr.hh"
#include "isa/encoding.hh"

namespace turbofuzz::fuzzer
{
namespace
{

namespace csr = isa::csr;

TEST(ExceptionTemplates, HandlerCodeDecodes)
{
    for (uint32_t w : ExceptionTemplates::handlerCode())
        EXPECT_TRUE(isa::decode(w).valid);
    EXPECT_EQ(ExceptionTemplates::handlerLength(),
              ExceptionTemplates::handlerCode().size());
    EXPECT_LE(ExceptionTemplates::handlerLength(), 8u);
}

TEST(ExceptionTemplates, InstallWritesHandler)
{
    soc::Memory mem;
    MemoryLayout lay;
    const uint64_t base = ExceptionTemplates::install(mem, lay);
    EXPECT_EQ(base, lay.handlerBase);
    const auto code = ExceptionTemplates::handlerCode();
    for (size_t i = 0; i < code.size(); ++i)
        EXPECT_EQ(mem.read32(base + 4 * i), code[i]);
}

/** Full resume flow: a faulting instruction is skipped, state fixed. */
TEST(ExceptionTemplates, ResumesAfterFaultingInstruction)
{
    soc::Memory mem;
    MemoryLayout lay;
    ExceptionTemplates::install(mem, lay);

    // Program: addi x1,x0,7 ; <illegal> ; addi x2,x0,9
    isa::Operands a;
    a.rd = 1;
    a.imm = 7;
    mem.write32(lay.instrBase, isa::encode(isa::Opcode::Addi, a));
    mem.write32(lay.instrBase + 4, 0xFFFFFFFF);
    isa::Operands b;
    b.rd = 2;
    b.imm = 9;
    mem.write32(lay.instrBase + 8, isa::encode(isa::Opcode::Addi, b));

    core::Iss::Options opts;
    opts.resetPc = lay.instrBase;
    core::Iss hart(&mem, opts);
    hart.state().mtvec = lay.handlerBase;

    // Execute through the fault and the handler (the pc leaves the
    // program region while inside the handler, so step a fixed count).
    for (int i = 0; i < 12; ++i)
        hart.step();
    EXPECT_EQ(hart.state().x(1), 7u);
    EXPECT_EQ(hart.state().x(2), 9u); // resumed past the fault
}

TEST(ExceptionTemplates, RepairsFpuStateAndFrm)
{
    soc::Memory mem;
    MemoryLayout lay;
    ExceptionTemplates::install(mem, lay);

    // Program: one FP instruction with the FPU disabled.
    isa::Operands f;
    f.rd = 1;
    f.rs1 = 2;
    f.rs2 = 3;
    mem.write32(lay.instrBase, isa::encode(isa::Opcode::FaddD, f));
    isa::Operands nop;
    nop.rd = 0;
    mem.write32(lay.instrBase + 4,
                isa::encode(isa::Opcode::Addi, nop));

    core::Iss::Options opts;
    opts.resetPc = lay.instrBase;
    core::Iss hart(&mem, opts);
    hart.state().mtvec = lay.handlerBase;
    hart.state().setFsField(csr::mstatusFsOff);
    hart.state().frm = 6; // invalid dynamic rm

    for (int i = 0; i < 10; ++i)
        hart.step();
    // The template re-enabled the FPU and reset frm to RNE.
    EXPECT_TRUE(hart.state().fpEnabled());
    EXPECT_EQ(hart.state().frm, csr::rmRNE);
}

TEST(ExceptionTemplates, HandlerOnlyClobbersReservedRegister)
{
    soc::Memory mem;
    MemoryLayout lay;
    ExceptionTemplates::install(mem, lay);

    mem.write32(lay.instrBase, 0xFFFFFFFF); // immediate fault
    isa::Operands nop;
    nop.rd = 0;
    mem.write32(lay.instrBase + 4,
                isa::encode(isa::Opcode::Addi, nop));

    core::Iss::Options opts;
    opts.resetPc = lay.instrBase;
    core::Iss hart(&mem, opts);
    hart.state().mtvec = lay.handlerBase;
    for (unsigned r = 1; r < 32; ++r)
        hart.state().setX(r, 1000 + r);

    for (int i = 0; i < 10; ++i)
        hart.step();
    for (unsigned r = 1; r < 32; ++r) {
        if (r == MemoryLayout::regHandlerTmp)
            continue;
        EXPECT_EQ(hart.state().x(r), 1000 + r) << "x" << r;
    }
}

} // namespace
} // namespace turbofuzz::fuzzer
