/** @file Mutation-scheduler policy tests (static + bandit). */

#include <gtest/gtest.h>

#include <map>

#include "fuzzer/mutation_scheduler.hh"
#include "fuzzer/turbofuzzer.hh"
#include "harness/campaign.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fuzzer
{
namespace
{

TEST(SchedulerKindTest, NamesRoundTrip)
{
    for (SchedulerKind kind :
         {SchedulerKind::Static, SchedulerKind::Bandit}) {
        SchedulerKind parsed{};
        ASSERT_TRUE(schedulerKindFromString(
            std::string(schedulerKindName(kind)), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    SchedulerKind parsed{};
    EXPECT_FALSE(schedulerKindFromString("greedy", &parsed));
}

TEST(StaticScheduler, ReproducesTheInlineDrawBitExactly)
{
    // The refactoring contract: pickOp must consume exactly one
    // rng.range(16) per decision and map it through the historical
    // r < gen ? Generate : r < gen + del ? Delete : Retain ladder, so
    // default campaigns reproduce pre-refactor stimulus bit-exactly.
    StaticScheduler sched(3, 11, {3, 4});
    Rng a(42), b(42);
    for (int i = 0; i < 4096; ++i) {
        const uint64_t r = b.range(16);
        const MutOp expected = r < 3    ? MutOp::Generate
                               : r < 14 ? MutOp::Delete
                                        : MutOp::Retain;
        EXPECT_EQ(sched.pickOp(a), expected) << "pick " << i;
        EXPECT_EQ(a.rawState(), b.rawState()) << "pick " << i;
    }
    EXPECT_EQ(sched.prioritizeProb().num, 3u);
    EXPECT_EQ(sched.prioritizeProb().den, 4u);
    EXPECT_EQ(sched.seedEnergy(1000), 1u); // reselect every iteration
}

TEST(StaticScheduler, MisconfiguredMixDiesWithDiagnostic)
{
    EXPECT_EXIT((void)MutationScheduler::make(SchedulerKind::Static,
                                              12, 12, {3, 4}),
                ::testing::ExitedWithCode(1), "misconfigured");
}

TEST(BanditScheduler, EveryArmKeepsAFloorSixteenth)
{
    BanditScheduler sched(3, 11, {3, 4});
    Rng rng(7);
    // Strongly reward Generate only, for many rounds.
    for (int round = 0; round < 200; ++round) {
        bool used_generate = false;
        for (int i = 0; i < 16; ++i)
            used_generate |= sched.pickOp(rng) == MutOp::Generate;
        sched.reportIteration(used_generate ? 50 : 0);
    }
    uint32_t total = 0;
    for (MutOp op : {MutOp::Generate, MutOp::Delete, MutOp::Retain}) {
        EXPECT_GE(sched.armSixteenths(op), 1u);
        total += sched.armSixteenths(op);
    }
    EXPECT_EQ(total, 16u);
}

TEST(BanditScheduler, ProfitShiftsTheMixTowardTheProfitableArm)
{
    BanditScheduler sched(3, 11, {3, 4});
    Rng rng(99);
    // Iterations that used Generate yield coverage; others none.
    for (int round = 0; round < 300; ++round) {
        std::map<MutOp, int> uses;
        for (int i = 0; i < 8; ++i)
            uses[sched.pickOp(rng)]++;
        sched.reportIteration(uses[MutOp::Generate] > 0 ? 40 : 0);
    }
    EXPECT_GT(sched.armSixteenths(MutOp::Generate),
              sched.armSixteenths(MutOp::Delete));
    EXPECT_GT(sched.armSixteenths(MutOp::Generate),
              sched.armSixteenths(MutOp::Retain));
}

TEST(BanditScheduler, PrioritizeProbabilityAdaptsWithinBounds)
{
    BanditScheduler sched(3, 11, {3, 4});
    Rng rng(5);
    // Droughts decay toward 8/16...
    for (int i = 0; i < 32; ++i) {
        sched.pickOp(rng);
        sched.reportIteration(0);
    }
    EXPECT_EQ(sched.prioritizeProb().num, 8u);
    EXPECT_EQ(sched.prioritizeProb().den, 16u);
    // ...progress climbs toward 15/16.
    for (int i = 0; i < 32; ++i) {
        sched.pickOp(rng);
        sched.reportIteration(9);
    }
    EXPECT_EQ(sched.prioritizeProb().num, 15u);
}

TEST(BanditScheduler, SeedEnergyScalesWithParentProfit)
{
    BanditScheduler sched(3, 11, {3, 4});
    EXPECT_EQ(sched.seedEnergy(0), 1u);
    EXPECT_EQ(sched.seedEnergy(1), 2u);
    EXPECT_EQ(sched.seedEnergy(7), 2u);
    EXPECT_EQ(sched.seedEnergy(8), 3u);
    EXPECT_EQ(sched.seedEnergy(63), 3u);
    EXPECT_EQ(sched.seedEnergy(64), 4u);
    EXPECT_EQ(sched.seedEnergy(1u << 30), 4u);
}

TEST(BanditScheduler, SaveLoadRoundTripContinuesIdentically)
{
    BanditScheduler sched(3, 11, {3, 4});
    Rng rng(13);
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 8; ++i)
            sched.pickOp(rng);
        sched.reportIteration(round % 3 == 0 ? 17 : 0);
    }

    soc::SnapshotWriter w;
    sched.saveState(w);
    const auto image = w.buffer();

    BanditScheduler back(3, 11, {3, 4});
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(back.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());

    // Identical table, prioritize probability, and — with identical
    // RNG streams — identical future decisions.
    for (MutOp op : {MutOp::Generate, MutOp::Delete, MutOp::Retain})
        EXPECT_EQ(back.armSixteenths(op), sched.armSixteenths(op));
    EXPECT_EQ(back.prioritizeProb().num, sched.prioritizeProb().num);
    Rng ra(777), rb(777);
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(sched.pickOp(ra), back.pickOp(rb));
        sched.reportIteration(static_cast<uint64_t>(round));
        back.reportIteration(static_cast<uint64_t>(round));
    }

    // Out-of-range prioritize numerator is a typed error.
    soc::SnapshotWriter bad;
    for (int a = 0; a < 3; ++a) {
        bad.putU64(0);
        bad.putU64(0);
        bad.putU32(0);
    }
    bad.putU64(99);
    soc::SnapshotReader bad_reader(bad.buffer());
    EXPECT_FALSE(back.loadState(bad_reader, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos);
}

/**
 * End-to-end determinism of bandit scheduling under
 * checkpoint/resume: a restored TurboFuzzer must generate the exact
 * stimulus sequence the uninterrupted one does, including the bandit
 * table evolution and per-seed energy bookkeeping.
 */
TEST(BanditScheduler, FuzzerCheckpointResumeIsDeterministic)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    FuzzerOptions opts;
    opts.instrsPerIteration = 200;
    opts.scheduler = SchedulerKind::Bandit;
    opts.seed = 31;

    auto pseudo_increment = [](const IterationInfo &info) {
        // Deterministic synthetic coverage signal.
        return (info.iterationIndex * 2654435761u) % 37;
    };

    // Uninterrupted run, checkpointed mid-way; its post-checkpoint
    // iterations are the reference the resumed fuzzer must match.
    TurboFuzzer whole(opts, &lib);
    soc::Memory mem_a;
    std::vector<uint8_t> image;
    std::vector<IterationInfo> tail;
    for (int i = 0; i < 30; ++i) {
        if (i == 18) {
            soc::SnapshotWriter w;
            whole.saveState(w);
            image = w.buffer();
        }
        const IterationInfo info = whole.generateIteration(mem_a);
        whole.reportResult(info, pseudo_increment(info));
        if (i >= 18)
            tail.push_back(info);
    }

    TurboFuzzer resumed(opts, &lib);
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(resumed.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());

    soc::Memory mem_c;
    for (const IterationInfo &expect : tail) {
        const IterationInfo got = resumed.generateIteration(mem_c);
        ASSERT_EQ(got.iterationIndex, expect.iterationIndex);
        ASSERT_EQ(got.parentSeedId, expect.parentSeedId);
        ASSERT_EQ(got.blocks.size(), expect.blocks.size());
        for (size_t bi = 0; bi < got.blocks.size(); ++bi)
            ASSERT_EQ(got.blocks[bi].insns, expect.blocks[bi].insns)
                << "iteration " << expect.iterationIndex << " block "
                << bi;
        resumed.reportResult(got, pseudo_increment(got));
    }
}

} // namespace
} // namespace turbofuzz::fuzzer
