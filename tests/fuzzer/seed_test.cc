/** @file Seed serialization tests. */

#include <gtest/gtest.h>

#include "fuzzer/seed.hh"

namespace turbofuzz::fuzzer
{
namespace
{

Seed
sampleSeed()
{
    Seed s;
    s.id = 42;
    s.coverageIncrement = 117;
    s.insertedAt = 9;
    SeedBlock b1;
    b1.insns = {0x00100093, 0x00208133};
    b1.primeIdx = 1;
    b1.isControlFlow = false;
    b1.targetBlock = -1;
    b1.position = 0;
    SeedBlock b2;
    b2.insns = {0x00b50863};
    b2.primeIdx = 0;
    b2.isControlFlow = true;
    b2.targetBlock = 0;
    b2.position = 1;
    s.blocks = {b1, b2};
    return s;
}

TEST(Seed, TotalInstrs)
{
    EXPECT_EQ(sampleSeed().totalInstrs(), 3u);
    EXPECT_EQ(Seed{}.totalInstrs(), 0u);
}

TEST(Seed, SerializeRoundTrip)
{
    const Seed s = sampleSeed();
    const auto bytes = s.serialize();
    const Seed t = Seed::deserialize(bytes);

    EXPECT_EQ(t.id, s.id);
    EXPECT_EQ(t.coverageIncrement, s.coverageIncrement);
    EXPECT_EQ(t.insertedAt, s.insertedAt);
    ASSERT_EQ(t.blocks.size(), s.blocks.size());
    for (size_t i = 0; i < s.blocks.size(); ++i) {
        EXPECT_EQ(t.blocks[i].insns, s.blocks[i].insns);
        EXPECT_EQ(t.blocks[i].primeIdx, s.blocks[i].primeIdx);
        EXPECT_EQ(t.blocks[i].isControlFlow,
                  s.blocks[i].isControlFlow);
        EXPECT_EQ(t.blocks[i].targetBlock, s.blocks[i].targetBlock);
        EXPECT_EQ(t.blocks[i].position, s.blocks[i].position);
    }
}

TEST(Seed, SerializedSizeFitsBramBudget)
{
    // The area model stores seeds in ~11 KiB slots; a 4000-instruction
    // seed must fit.
    Seed s;
    for (int b = 0; b < 1600; ++b) {
        SeedBlock blk;
        blk.insns = {0x13, 0x13, 0x13 /* nops */};
        blk.primeIdx = 2;
        blk.position = static_cast<uint32_t>(b);
        s.blocks.push_back(blk);
    }
    EXPECT_EQ(s.totalInstrs(), 4800u);
    // Worst case ~ 4 bytes/instr + 13 bytes/block metadata + header.
    EXPECT_LT(s.serialize().size(), 48000u);
}

} // namespace
} // namespace turbofuzz::fuzzer
