/** @file Seed serialization tests. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fuzzer/seed.hh"

namespace turbofuzz::fuzzer
{
namespace
{

Seed
sampleSeed()
{
    Seed s;
    s.id = 42;
    s.coverageIncrement = 117;
    s.insertedAt = 9;
    s.parentId = 7;
    s.originOp = 3;
    s.lineageDepth = 2;
    s.energyAtCreation = 50;
    SeedBlock b1;
    b1.insns = {0x00100093, 0x00208133};
    b1.primeIdx = 1;
    b1.isControlFlow = false;
    b1.targetBlock = -1;
    b1.position = 0;
    SeedBlock b2;
    b2.insns = {0x00b50863};
    b2.primeIdx = 0;
    b2.isControlFlow = true;
    b2.targetBlock = 0;
    b2.position = 1;
    s.blocks = {b1, b2};
    return s;
}

TEST(Seed, TotalInstrs)
{
    EXPECT_EQ(sampleSeed().totalInstrs(), 3u);
    EXPECT_EQ(Seed{}.totalInstrs(), 0u);
}

TEST(Seed, SerializeRoundTrip)
{
    const Seed s = sampleSeed();
    const auto bytes = s.serialize();
    const Seed t = Seed::deserialize(bytes);

    EXPECT_EQ(t.id, s.id);
    EXPECT_EQ(t.coverageIncrement, s.coverageIncrement);
    EXPECT_EQ(t.insertedAt, s.insertedAt);
    EXPECT_EQ(t.parentId, s.parentId);
    EXPECT_EQ(t.originOp, s.originOp);
    EXPECT_EQ(t.lineageDepth, s.lineageDepth);
    EXPECT_EQ(t.energyAtCreation, s.energyAtCreation);
    ASSERT_EQ(t.blocks.size(), s.blocks.size());
    for (size_t i = 0; i < s.blocks.size(); ++i) {
        EXPECT_EQ(t.blocks[i].insns, s.blocks[i].insns);
        EXPECT_EQ(t.blocks[i].primeIdx, s.blocks[i].primeIdx);
        EXPECT_EQ(t.blocks[i].isControlFlow,
                  s.blocks[i].isControlFlow);
        EXPECT_EQ(t.blocks[i].targetBlock, s.blocks[i].targetBlock);
        EXPECT_EQ(t.blocks[i].position, s.blocks[i].position);
    }
}

TEST(Seed, RandomRoundTripProperty)
{
    // Property test: arbitrary well-formed seeds survive the
    // serialize -> deserialize round trip bit-exactly.
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 50; ++trial) {
        Seed s;
        s.id = rng.range(1 << 30);
        s.coverageIncrement = rng.range(1 << 20);
        s.insertedAt = rng.range(1 << 20);
        s.parentId = rng.range(1 << 30);
        s.originOp = static_cast<uint8_t>(rng.range(4));
        s.lineageDepth = static_cast<uint32_t>(rng.range(64));
        s.energyAtCreation = rng.range(1 << 10);
        const size_t nblocks = rng.range(20);
        for (size_t b = 0; b < nblocks; ++b) {
            SeedBlock blk;
            const size_t ninsns = 1 + rng.range(6);
            for (size_t i = 0; i < ninsns; ++i)
                blk.insns.push_back(
                    static_cast<uint32_t>(rng.range(~0u)));
            blk.primeIdx =
                static_cast<uint32_t>(rng.range(ninsns));
            blk.isControlFlow = rng.range(2) == 1;
            blk.targetBlock =
                static_cast<int32_t>(rng.range(nblocks + 1)) - 1;
            blk.position = static_cast<uint32_t>(b);
            s.blocks.push_back(std::move(blk));
        }
        const auto bytes = s.serialize();
        const Seed t = Seed::deserialize(bytes);
        EXPECT_EQ(t.id, s.id);
        EXPECT_EQ(t.parentId, s.parentId);
        EXPECT_EQ(t.originOp, s.originOp);
        EXPECT_EQ(t.lineageDepth, s.lineageDepth);
        EXPECT_EQ(t.energyAtCreation, s.energyAtCreation);
        ASSERT_EQ(t.blocks.size(), s.blocks.size());
        for (size_t i = 0; i < s.blocks.size(); ++i) {
            EXPECT_EQ(t.blocks[i].insns, s.blocks[i].insns);
            EXPECT_EQ(t.blocks[i].primeIdx, s.blocks[i].primeIdx);
            EXPECT_EQ(t.blocks[i].targetBlock,
                      s.blocks[i].targetBlock);
        }
        EXPECT_EQ(t.serialize(), bytes);
    }
}

TEST(Seed, TruncatedInputRejectedAtEveryLength)
{
    const auto bytes = sampleSeed().serialize();
    // Every proper prefix must be rejected without throwing anything
    // but the typed error — and without asserting.
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::vector<uint8_t> t(bytes.begin(),
                                     bytes.begin() +
                                         static_cast<long>(cut));
        std::string error;
        EXPECT_FALSE(Seed::tryDeserialize(t, &error).has_value())
            << "prefix length " << cut;
        EXPECT_FALSE(error.empty());
        EXPECT_THROW(Seed::deserialize(t), SeedFormatError);
    }
}

TEST(Seed, CorruptLengthFieldsCannotTriggerHugeAllocations)
{
    const auto bytes = sampleSeed().serialize();

    // Corrupt the block count (offset 45, after the 45-byte header)
    // to ~4 billion: must be rejected by bounds validation, not
    // attempted as a resize.
    std::vector<uint8_t> huge_blocks = bytes;
    huge_blocks[45] = huge_blocks[46] = huge_blocks[47] =
        huge_blocks[48] = 0xFF;
    std::string error;
    EXPECT_FALSE(
        Seed::tryDeserialize(huge_blocks, &error).has_value());
    EXPECT_NE(error.find("block count"), std::string::npos);

    // Corrupt the first block's instruction count (offset 49).
    std::vector<uint8_t> huge_insns = bytes;
    huge_insns[49] = huge_insns[50] = huge_insns[51] =
        huge_insns[52] = 0xFF;
    EXPECT_FALSE(
        Seed::tryDeserialize(huge_insns, &error).has_value());
    EXPECT_NE(error.find("instruction count"), std::string::npos);
}

TEST(Seed, TrailingBytesRejected)
{
    auto bytes = sampleSeed().serialize();
    bytes.push_back(0xAB);
    std::string error;
    EXPECT_FALSE(Seed::tryDeserialize(bytes, &error).has_value());
    EXPECT_NE(error.find("trailing"), std::string::npos);
    EXPECT_THROW(Seed::deserialize(bytes), SeedFormatError);
}

TEST(Seed, OutOfRangePrimeIndexRejected)
{
    Seed s = sampleSeed();
    auto bytes = s.serialize();
    // First block: ninsns at 45+4, insns follow; primeIdx sits at
    // offset 49 + 4 + 8 = 61. Point it past the block.
    bytes[61] = 9;
    EXPECT_FALSE(Seed::tryDeserialize(bytes).has_value());
}

TEST(Seed, EmptyControlFlowBlockRejected)
{
    // Consumers patch insns[primeIdx] of control-flow blocks
    // unconditionally, so a crafted empty one must not parse.
    Seed s;
    SeedBlock empty_cf;
    empty_cf.isControlFlow = true;
    s.blocks.push_back(empty_cf);
    std::string error;
    EXPECT_FALSE(
        Seed::tryDeserialize(s.serialize(), &error).has_value());
    EXPECT_NE(error.find("control-flow"), std::string::npos);
}

TEST(Seed, SerializedSizeFitsBramBudget)
{
    // The area model stores seeds in ~11 KiB slots; a 4000-instruction
    // seed must fit.
    Seed s;
    for (int b = 0; b < 1600; ++b) {
        SeedBlock blk;
        blk.insns = {0x13, 0x13, 0x13 /* nops */};
        blk.primeIdx = 2;
        blk.position = static_cast<uint32_t>(b);
        s.blocks.push_back(blk);
    }
    EXPECT_EQ(s.totalInstrs(), 4800u);
    // Worst case ~ 4 bytes/instr + 13 bytes/block metadata + header.
    EXPECT_LT(s.serialize().size(), 48000u);
}

} // namespace
} // namespace turbofuzz::fuzzer
