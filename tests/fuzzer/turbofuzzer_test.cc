/** @file TurboFuzzer end-to-end generation tests. */

#include <gtest/gtest.h>

#include <set>

#include "core/iss.hh"
#include "fuzzer/turbofuzzer.hh"
#include "harness/campaign.hh"
#include "isa/encoding.hh"

namespace turbofuzz::fuzzer
{
namespace
{

isa::InstructionLibrary &
testLibrary()
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    return lib;
}

TEST(TurboFuzzer, GeneratesTargetInstructionCount)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 1000;
    TurboFuzzer fz(opts, &testLibrary());
    soc::Memory mem;
    const IterationInfo info = fz.generateIteration(mem);
    EXPECT_GE(info.generatedInstrs, 1000u);
    EXPECT_LT(info.generatedInstrs, 1100u); // last block overshoot only
    EXPECT_GT(info.blocks.size(), 200u);
    EXPECT_EQ(info.entryPc, opts.layout.instrBase);
    EXPECT_GT(info.codeBoundary, info.firstBlockPc);
}

TEST(TurboFuzzer, EveryEmittedWordDecodes)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 2000;
    TurboFuzzer fz(opts, &testLibrary());
    soc::Memory mem;
    const IterationInfo info = fz.generateIteration(mem);
    for (uint64_t a = info.entryPc; a < info.codeBoundary; a += 4) {
        EXPECT_TRUE(isa::decode(mem.read32(a)).valid)
            << "at 0x" << std::hex << a;
    }
}

TEST(TurboFuzzer, ControlFlowTargetsLandOnBlockBoundaries)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 1500;
    TurboFuzzer fz(opts, &testLibrary());
    soc::Memory mem;
    const IterationInfo info = fz.generateIteration(mem);

    // Reconstruct block base addresses.
    std::set<uint64_t> bases;
    uint64_t addr = info.firstBlockPc;
    for (const SeedBlock &b : info.blocks) {
        bases.insert(addr);
        addr += 4ull * b.instrCount();
    }
    bases.insert(info.codeBoundary);

    // Every branch/jal target must be a block base.
    addr = info.firstBlockPc;
    for (const SeedBlock &b : info.blocks) {
        const uint64_t prime_addr = addr + 4ull * b.primeIdx;
        const isa::Decoded d =
            isa::decode(mem.read32(prime_addr));
        if (d.valid && (d.desc->has(isa::FlagBranch) ||
                        d.desc->has(isa::FlagJal))) {
            const uint64_t target =
                prime_addr + static_cast<uint64_t>(d.ops.imm);
            EXPECT_TRUE(bases.count(target))
                << "target 0x" << std::hex << target;
        }
        addr += 4ull * b.instrCount();
    }
}

TEST(TurboFuzzer, JumpRangeLimitRespected)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 2000;
    opts.jumpRangeBlocks = 8;
    TurboFuzzer fz(opts, &testLibrary());
    soc::Memory mem;
    const IterationInfo info = fz.generateIteration(mem);
    const auto n = static_cast<int64_t>(info.blocks.size());
    for (int64_t i = 0; i < n; ++i) {
        const SeedBlock &b = info.blocks[i];
        if (!b.isControlFlow || b.targetBlock < 0)
            continue;
        // Freshly generated targets stay within the window (retained
        // seed targets are exempt, but iteration 0 has no seeds).
        EXPECT_LE(std::abs(b.targetBlock - i), 8) << "block " << i;
    }
}

TEST(TurboFuzzer, DeterministicForSameSeed)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 500;
    opts.seed = 99;
    TurboFuzzer a(opts, &testLibrary());
    TurboFuzzer b(opts, &testLibrary());
    soc::Memory ma, mb;
    const IterationInfo ia = a.generateIteration(ma);
    const IterationInfo ib = b.generateIteration(mb);
    ASSERT_EQ(ia.generatedInstrs, ib.generatedInstrs);
    for (uint64_t addr = ia.entryPc; addr < ia.codeBoundary; addr += 4)
        ASSERT_EQ(ma.read32(addr), mb.read32(addr));
}

TEST(TurboFuzzer, SeedsChangeOutput)
{
    FuzzerOptions a_opts;
    a_opts.seed = 1;
    FuzzerOptions b_opts;
    b_opts.seed = 2;
    TurboFuzzer a(a_opts, &testLibrary());
    TurboFuzzer b(b_opts, &testLibrary());
    soc::Memory ma, mb;
    a.generateIteration(ma);
    b.generateIteration(mb);
    int diffs = 0;
    for (uint64_t off = 0; off < 4096; off += 4)
        diffs += ma.read32(a.options().layout.instrBase + off) !=
                 mb.read32(b.options().layout.instrBase + off);
    EXPECT_GT(diffs, 100);
}

TEST(TurboFuzzer, ReportResultArchivesImprovingSeeds)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 300;
    TurboFuzzer fz(opts, &testLibrary());
    soc::Memory mem;
    const IterationInfo i1 = fz.generateIteration(mem);
    fz.reportResult(i1, 50); // improving: admitted
    EXPECT_EQ(fz.corpus().size(), 1u);
    const IterationInfo i2 = fz.generateIteration(mem);
    fz.reportResult(i2, 0); // not improving: rejected
    EXPECT_EQ(fz.corpus().size(), 1u);
}

TEST(TurboFuzzer, MutationModeReusesSeedBlocks)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 400;
    opts.mutationMode = {16, 16}; // always mutate
    opts.mutGenSixteenths = 0;    // never generate fresh
    opts.mutDelSixteenths = 0;    // never delete -> pure retention
    TurboFuzzer fz(opts, &testLibrary());
    soc::Memory mem;
    const IterationInfo first = fz.generateIteration(mem);
    fz.reportResult(first, 10);

    const IterationInfo second = fz.generateIteration(mem);
    ASSERT_GT(second.parentSeedId, 0u);
    // With pure retention, the second iteration's block instruction
    // words come from the seed (operand mutation may tweak them, so
    // compare block sizes which retention preserves).
    ASSERT_GE(second.blocks.size(), first.blocks.size() - 1);
    size_t matching = 0;
    for (size_t i = 0;
         i < std::min(first.blocks.size(), second.blocks.size());
         ++i) {
        matching += first.blocks[i].insns.size() ==
                    second.blocks[i].insns.size();
    }
    EXPECT_GT(matching, first.blocks.size() / 2);
}

TEST(TurboFuzzer, IterationRunsToBoundaryOnIss)
{
    FuzzerOptions opts;
    opts.instrsPerIteration = 800;
    TurboFuzzer fz(opts, &testLibrary());
    soc::Memory mem;
    const IterationInfo info = fz.generateIteration(mem);

    core::Iss::Options iopts;
    iopts.resetPc = info.entryPc;
    core::Iss hart(&mem, iopts);
    const MemoryLayout &lay = fz.options().layout;
    hart.addAccessRange(lay.instrBase, lay.instrSize);
    hart.addAccessRange(lay.dataBase, lay.dataSize);
    hart.addAccessRange(lay.handlerBase, 4096);

    const uint64_t cap = 2 * info.generatedInstrs + 512;
    uint64_t steps = 0;
    while (steps < cap) {
        hart.step();
        ++steps;
        const uint64_t pc = hart.state().pc;
        if (pc >= info.codeBoundary && pc < lay.handlerBase)
            break;
    }
    // Either a clean exit or a bounded loop; never a stray escape.
    const uint64_t pc = hart.state().pc;
    EXPECT_TRUE((pc >= lay.instrBase &&
                 pc < lay.instrBase + lay.instrSize) ||
                (pc >= lay.handlerBase && pc < lay.handlerBase + 4096))
        << std::hex << pc;
}

} // namespace
} // namespace turbofuzz::fuzzer
