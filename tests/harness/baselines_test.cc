/** @file Baseline-fuzzer behaviour tests (DifuzzRTL / Cascade). */

#include <gtest/gtest.h>

#include <set>

#include "baselines/cascade.hh"
#include "baselines/difuzzrtl.hh"
#include "core/iss.hh"
#include "harness/campaign.hh"
#include "isa/encoding.hh"

namespace turbofuzz::baselines
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = harness::makeDefaultLibrary();
    return l;
}

TEST(DifuzzRtl, GeneratesShortIterationsWithBootstrap)
{
    DifuzzRtlGenerator gen(1, &lib());
    soc::Memory mem;
    const fuzzer::IterationInfo info = gen.generate(mem);
    EXPECT_GE(info.generatedInstrs, 912u);
    EXPECT_LT(info.generatedInstrs, 1050u);
    // The bootstrap region (~700 instructions) precedes the blocks.
    EXPECT_GT(info.firstBlockPc - info.entryPc, 4ull * 700);
    EXPECT_FALSE(gen.usesExceptionTemplates());
}

TEST(DifuzzRtl, LowExecutedFraction)
{
    // The eq. (1) pathology: unconstrained forward jumps skip most
    // of each iteration.
    DifuzzRtlGenerator gen(2, &lib());
    const fuzzer::MemoryLayout lay = gen.layout();
    soc::Memory mem;
    uint64_t executed_unique = 0, generated = 0;
    for (int it = 0; it < 30; ++it) {
        const auto info = gen.generate(mem);
        generated += info.generatedInstrs;
        core::Iss::Options o;
        o.resetPc = info.entryPc;
        core::Iss hart(&mem, o);
        hart.addAccessRange(lay.instrBase, lay.instrSize);
        hart.addAccessRange(lay.dataBase, lay.dataSize);
        std::set<uint64_t> seen;
        for (uint64_t n = 0; n < info.generatedInstrs + 1024; ++n) {
            const auto ci = hart.step();
            if (ci.trapped)
                break;
            if (ci.pc >= info.firstBlockPc &&
                ci.pc < info.codeBoundary)
                seen.insert(ci.pc);
            if (hart.state().pc >= info.codeBoundary)
                break;
        }
        executed_unique += seen.size();
        gen.feedback(info, 1);
    }
    const double frac = static_cast<double>(executed_unique) /
                        static_cast<double>(generated);
    EXPECT_LT(frac, 0.40); // paper: ~0.193
    EXPECT_GT(frac, 0.02);
}

TEST(Cascade, ProgramsExecuteCompletelyAndTerminate)
{
    CascadeGenerator gen(3, &lib());
    const fuzzer::MemoryLayout lay = gen.layout();
    soc::Memory mem;
    for (int it = 0; it < 10; ++it) {
        const auto info = gen.generate(mem);
        core::Iss::Options o;
        o.resetPc = info.entryPc;
        core::Iss hart(&mem, o);
        hart.addAccessRange(lay.instrBase, lay.instrSize);
        hart.addAccessRange(lay.dataBase, lay.dataSize);
        uint64_t steps = 0;
        bool clean = false;
        while (steps < 3ull * info.generatedInstrs + 512) {
            const auto ci = hart.step();
            ++steps;
            ASSERT_FALSE(ci.trapped)
                << "cascade program trapped at step " << steps;
            if (hart.state().pc >= info.codeBoundary) {
                clean = true;
                break;
            }
        }
        EXPECT_TRUE(clean) << "iteration " << it;
        gen.feedback(info, 0);
    }
}

TEST(Cascade, EveryGeneratedInstructionExecutes)
{
    // Cascade's defining property: the shuffled chain visits every
    // block exactly once (prevalence ~0.9 with setup/teardown).
    CascadeGenerator gen(4, &lib());
    const fuzzer::MemoryLayout lay = gen.layout();
    soc::Memory mem;
    const auto info = gen.generate(mem);
    core::Iss::Options o;
    o.resetPc = info.entryPc;
    core::Iss hart(&mem, o);
    hart.addAccessRange(lay.instrBase, lay.instrSize);
    hart.addAccessRange(lay.dataBase, lay.dataSize);
    std::set<uint64_t> seen;
    uint64_t steps = 0;
    while (steps < 3ull * info.generatedInstrs + 512) {
        const auto ci = hart.step();
        ++steps;
        if (ci.pc >= info.firstBlockPc && ci.pc < info.fuzzRegionEnd)
            seen.insert(ci.pc);
        if (hart.state().pc >= info.codeBoundary)
            break;
    }
    EXPECT_EQ(seen.size(), info.generatedInstrs);
}

TEST(Cascade, CampaignPrevalenceNearPaperValue)
{
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::cascadeProfile();
    opts.checkMode = checker::DiffChecker::Mode::EndOfIteration;
    harness::Campaign c(
        opts, std::make_unique<CascadeGenerator>(5, &lib()));
    c.run(40.0);
    EXPECT_GT(c.prevalence(), 0.80);
    EXPECT_LT(c.prevalence(), 0.98);
}

TEST(Baselines, NamesAndLayouts)
{
    DifuzzRtlGenerator d(1, &lib());
    CascadeGenerator c(1, &lib());
    EXPECT_EQ(d.name(), "DifuzzRTL");
    EXPECT_EQ(c.name(), "Cascade");
    EXPECT_EQ(d.layout().instrBase, c.layout().instrBase);
}

} // namespace
} // namespace turbofuzz::baselines
