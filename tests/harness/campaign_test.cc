/** @file Campaign integration tests: the full loop end-to-end. */

#include <gtest/gtest.h>

#include "fuzzer/generator.hh"
#include "harness/campaign.hh"

namespace turbofuzz::harness
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = makeDefaultLibrary();
    return l;
}

std::unique_ptr<fuzzer::TurboFuzzGenerator>
makeGen(uint64_t seed, uint32_t ipi = 1000)
{
    fuzzer::FuzzerOptions o;
    o.seed = seed;
    o.instrsPerIteration = ipi;
    return std::make_unique<fuzzer::TurboFuzzGenerator>(o, &lib());
}

TEST(Campaign, IterationProducesCoverageAndTime)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    Campaign c(opts, makeGen(1));
    const IterationResult r = c.runIteration();
    EXPECT_GT(r.generated, 900u);
    EXPECT_GT(r.executedTotal, 500u);
    EXPECT_GT(r.newCoverage, 50u);
    EXPECT_FALSE(r.mismatch);
    EXPECT_GT(c.nowSec(), 1.0); // startup + iteration
}

TEST(Campaign, RunHonorsBudget)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    Campaign c(opts, makeGen(2));
    const TimeSeries s = c.run(3.0);
    EXPECT_GE(c.nowSec(), 3.0);
    EXPECT_LT(c.nowSec(), 4.0);
    EXPECT_GT(c.iterations(), 50u);
    EXPECT_FALSE(s.empty());
    // Coverage is monotone non-decreasing.
    double prev = 0;
    for (const auto &sample : s.samples()) {
        EXPECT_GE(sample.value, prev);
        prev = sample.value;
    }
}

TEST(Campaign, NoBugsMeansNoMismatches)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    Campaign c(opts, makeGen(3));
    c.run(3.0);
    EXPECT_FALSE(c.firstMismatch().has_value());
}

TEST(Campaign, InjectedBugIsCaughtAndSnapshotted)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    opts.coreKind = core::CoreKind::Boom;
    opts.bugs = core::BugSet::single(core::BugId::B1);
    opts.stopOnMismatch = true;
    Campaign c(opts, makeGen(4));
    c.run(30.0);
    ASSERT_TRUE(c.firstMismatch().has_value());
    EXPECT_TRUE(c.mismatchSnapshot().hasSection("dut.arch"));
    EXPECT_FALSE(c.mismatchSnapshot().trigger().empty());
}

TEST(Campaign, DeterministicReplay)
{
    auto run_once = [](uint64_t seed) {
        CampaignOptions opts;
        opts.timing = soc::turboFuzzProfile();
        opts.seed = seed;
        Campaign c(opts, makeGen(seed));
        c.run(2.0);
        return std::make_pair(c.coverageMap().totalCovered(),
                              c.executedInstructions());
    };
    EXPECT_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

TEST(Campaign, PrevalenceInExpectedBand)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    Campaign c(opts, makeGen(5, 4000));
    c.run(5.0);
    EXPECT_GT(c.prevalence(), 0.90);
    EXPECT_LE(c.prevalence(), 1.0);
}

TEST(Campaign, CommitObserverSeesEveryCommit)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    uint64_t observed = 0;
    opts.commitObserver = [&](const core::CommitInfo &) {
        ++observed;
    };
    Campaign c(opts, makeGen(6));
    const IterationResult r = c.runIteration();
    EXPECT_EQ(observed, r.executedTotal);
}

TEST(Campaign, BaselineSchemeCoversLessThanOptimized)
{
    auto run_with = [](coverage::Scheme scheme) {
        CampaignOptions opts;
        opts.timing = soc::turboFuzzProfile();
        opts.covScheme = scheme;
        Campaign c(opts, makeGen(9));
        c.run(4.0);
        return c.coverageMap().totalCovered();
    };
    // The optimized instrumentation reaches more points within the
    // same budget (Fig. 7's direction).
    EXPECT_GT(run_with(coverage::Scheme::Optimized),
              run_with(coverage::Scheme::Baseline));
}

TEST(Campaign, SlicedRunMatchesPlainRun)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    opts.seed = 13;
    Campaign plain(opts, makeGen(13));
    const TimeSeries whole = plain.run(2.0);

    Campaign sliced(opts, makeGen(13));
    TimeSeries series("sliced");
    EXPECT_TRUE(sliced.runSlice(0.7, series));
    EXPECT_TRUE(sliced.runSlice(1.4, series));
    EXPECT_TRUE(sliced.runSlice(2.0, series));

    ASSERT_EQ(whole.samples().size(), series.samples().size());
    for (size_t i = 0; i < whole.samples().size(); ++i) {
        EXPECT_DOUBLE_EQ(whole.samples()[i].timeSec,
                         series.samples()[i].timeSec);
        EXPECT_DOUBLE_EQ(whole.samples()[i].value,
                         series.samples()[i].value);
    }
    EXPECT_EQ(plain.iterations(), sliced.iterations());
    EXPECT_EQ(plain.executedInstructions(),
              sliced.executedInstructions());
}

TEST(Campaign, InjectSeedsReachesGeneratorCorpus)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    Campaign c(opts, makeGen(14));
    c.runIteration(); // warm up: corpus may or may not admit

    auto gen =
        dynamic_cast<fuzzer::TurboFuzzGenerator *>(&c.generator());
    ASSERT_NE(gen, nullptr);
    const size_t before = gen->underlying().corpus().size();

    fuzzer::Seed s;
    fuzzer::SeedBlock b;
    b.insns = {0x13}; // nop
    s.blocks.push_back(b);
    s.coverageIncrement = 1 << 20; // outranks anything resident
    EXPECT_EQ(c.injectSeeds({s}), 1u);
    EXPECT_EQ(gen->underlying().corpus().size(), before + 1);
}

TEST(Campaign, CountsMismatchedIterations)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    opts.coreKind = core::CoreKind::Boom;
    opts.bugs = core::BugSet::single(core::BugId::B1);
    Campaign c(opts, makeGen(4));
    c.run(30.0);
    EXPECT_GT(c.mismatchedIterations(), 0u);
    ASSERT_TRUE(c.firstMismatch().has_value());
}

TEST(MakeDefaultLibraryTest, ExcludesMret)
{
    EXPECT_FALSE(lib().contains(isa::Opcode::Mret));
    EXPECT_TRUE(lib().contains(isa::Opcode::Add));
}

/**
 * Checkpoint round trip: a campaign checkpointed mid-run and
 * restored into a fresh instance must continue bit-identically to
 * the uninterrupted campaign — coverage, counters, simulated time,
 * mismatch evidence and reproducer bytes. Uses a buggy DUT so the
 * mismatch/reproducer state actually crosses the checkpoint.
 */
TEST(Campaign, CheckpointRestoreContinuesBitIdentically)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();
    opts.coreKind = core::CoreKind::Cva6;
    opts.bugs = core::BugSet::single(core::BugId::C1);
    const uint64_t seed = 5;

    // Reference: one uninterrupted run of 2N iterations.
    Campaign whole(opts, makeGen(seed));
    for (int i = 0; i < 120; ++i)
        whole.runIteration();

    // Checkpoint after N iterations...
    Campaign first(opts, makeGen(seed));
    for (int i = 0; i < 60; ++i)
        first.runIteration();
    soc::SnapshotWriter w;
    ASSERT_TRUE(first.saveState(w));
    const auto image = w.takeBuffer();

    // ...restore into a FRESH campaign and run the second half.
    Campaign second(opts, makeGen(seed));
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(second.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());
    EXPECT_EQ(second.iterations(), 60u);
    for (int i = 0; i < 60; ++i)
        second.runIteration();

    EXPECT_EQ(second.iterations(), whole.iterations());
    EXPECT_EQ(second.executedInstructions(),
              whole.executedInstructions());
    EXPECT_EQ(second.generatedInstructions(),
              whole.generatedInstructions());
    EXPECT_EQ(second.mismatchedIterations(),
              whole.mismatchedIterations());
    EXPECT_DOUBLE_EQ(second.nowSec(), whole.nowSec());
    EXPECT_EQ(second.coverageMap().totalCovered(),
              whole.coverageMap().totalCovered());

    ASSERT_EQ(second.firstMismatch().has_value(),
              whole.firstMismatch().has_value());
    if (whole.firstMismatch()) {
        EXPECT_EQ(second.firstMismatch()->pc,
                  whole.firstMismatch()->pc);
        EXPECT_EQ(second.firstMismatch()->instrIndex,
                  whole.firstMismatch()->instrIndex);
        EXPECT_EQ(second.mismatchSnapshot().serialize(),
                  whole.mismatchSnapshot().serialize());
    }
    ASSERT_EQ(second.reproducers().size(), whole.reproducers().size());
    for (size_t i = 0; i < whole.reproducers().size(); ++i)
        EXPECT_EQ(second.reproducers()[i].serialize(),
                  whole.reproducers()[i].serialize());
}

/** Malformed campaign state must be rejected with a diagnostic, not
 *  a crash. */
TEST(Campaign, MalformedCheckpointRejected)
{
    CampaignOptions opts;
    opts.timing = soc::turboFuzzProfile();

    Campaign donor(opts, makeGen(3));
    for (int i = 0; i < 10; ++i)
        donor.runIteration();
    soc::SnapshotWriter w;
    ASSERT_TRUE(donor.saveState(w));
    auto image = w.takeBuffer();

    std::string error;
    {
        // Truncated image.
        auto cut = image;
        cut.resize(cut.size() / 2);
        Campaign victim(opts, makeGen(3));
        soc::SnapshotReader r(cut);
        EXPECT_FALSE(victim.loadState(r, &error));
        EXPECT_FALSE(error.empty());
    }
    {
        // Bad version word.
        auto bad = image;
        bad[0] = 0x7F;
        Campaign victim(opts, makeGen(3));
        soc::SnapshotReader r(bad);
        EXPECT_FALSE(victim.loadState(r, &error));
        EXPECT_NE(error.find("version"), std::string::npos);
    }
}

} // namespace
} // namespace turbofuzz::harness
