/**
 * @file
 * Campaign-level tests of the pluggable feedback layer: default-path
 * equivalence, non-default models end-to-end, and checkpointing of
 * model + scheduler state.
 */

#include <gtest/gtest.h>

#include "fuzzer/generator.hh"
#include "harness/campaign.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::harness
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = makeDefaultLibrary();
    return l;
}

std::unique_ptr<fuzzer::TurboFuzzGenerator>
makeGen(uint64_t seed, fuzzer::SchedulerKind sched =
                           fuzzer::SchedulerKind::Static)
{
    fuzzer::FuzzerOptions o;
    o.seed = seed;
    o.instrsPerIteration = 1000;
    o.scheduler = sched;
    return std::make_unique<fuzzer::TurboFuzzGenerator>(o, &lib());
}

/** Everything a campaign's observable outcome comprises. */
struct Outcome
{
    uint64_t coverage;
    uint64_t executed;
    uint64_t generated;
    uint64_t iterations;
    uint64_t mismatches;

    bool
    operator==(const Outcome &o) const
    {
        return coverage == o.coverage && executed == o.executed &&
               generated == o.generated &&
               iterations == o.iterations &&
               mismatches == o.mismatches;
    }
};

Outcome
outcomeOf(Campaign &c)
{
    return {c.coverageMap().totalCovered(), c.executedInstructions(),
            c.generatedInstructions(), c.iterations(),
            c.mismatchedIterations()};
}

/**
 * Acceptance: the composite wrapper is increment-neutral. A
 * Composite configuration whose only weighted signal is the mux map
 * must reproduce the default (Mux) campaign bit-exactly — same
 * coverage, same executed stream, same mismatch set — across batch
 * sizes and with warm start on and off, including on a buggy core.
 */
TEST(FeedbackCampaign, MuxWeightedCompositeMatchesDefaultBitExactly)
{
    for (const uint64_t batch : {uint64_t{1}, uint64_t{64}}) {
        for (const bool warm : {false, true}) {
            auto opts = CampaignOptions{};
            opts.timing = soc::turboFuzzProfile();
            opts.coreKind = core::CoreKind::Cva6;
            opts.bugs = core::BugSet::single(core::BugId::C5);
            opts.batchSize = batch;
            opts.warmStart = warm;

            Campaign plain(opts, makeGen(21));
            plain.run(3.0);

            opts.coverageModel =
                coverage::CoverageModelKind::Composite;
            opts.feedbackWeightMux = 1;
            opts.feedbackWeightCsr = 0;
            opts.feedbackWeightHit = 0;
            Campaign composite(opts, makeGen(21));
            composite.run(3.0);

            EXPECT_TRUE(outcomeOf(plain) == outcomeOf(composite))
                << "batch " << batch << " warm " << warm;
            // The muted models were still swept.
            ASSERT_NE(composite.csrModel(), nullptr);
            EXPECT_GT(composite.csrModel()->newlyHit(), 0u);
            EXPECT_GT(composite.hitCountModel()->newlyHit(), 0u);
        }
    }
}

TEST(FeedbackCampaign, CsrModelSchedulesOnCsrSignal)
{
    auto opts = CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.coverageModel = coverage::CoverageModelKind::Csr;
    Campaign c(opts, makeGen(22));
    c.run(2.0);

    ASSERT_NE(c.csrModel(), nullptr);
    EXPECT_EQ(c.hitCountModel(), nullptr);
    EXPECT_EQ(c.feedbackModel().modelName(), "composite");
    // The CSR signal fired (exception templates guarantee traps and
    // CSR traffic), and the mux map — the reported metric — still
    // accumulated normally.
    EXPECT_GT(c.csrModel()->newlyHit(), 0u);
    EXPECT_GT(c.coverageMap().totalCovered(), 0u);
}

TEST(FeedbackCampaign, HitCountModelSchedulesOnEdgeSignal)
{
    auto opts = CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.coverageModel = coverage::CoverageModelKind::HitCount;
    Campaign c(opts, makeGen(23));
    c.run(2.0);

    EXPECT_EQ(c.csrModel(), nullptr);
    ASSERT_NE(c.hitCountModel(), nullptr);
    EXPECT_GT(c.hitCountModel()->newlyHit(), 0u);
    EXPECT_GT(c.coverageMap().totalCovered(), 0u);
}

TEST(FeedbackCampaign, ModelRunsAreDeterministic)
{
    auto run_once = [](coverage::CoverageModelKind kind,
                       fuzzer::SchedulerKind sched) {
        auto opts = CampaignOptions{};
        opts.timing = soc::turboFuzzProfile();
        opts.coverageModel = kind;
        Campaign c(opts, makeGen(31, sched));
        c.run(2.0);
        return std::make_tuple(c.coverageMap().totalCovered(),
                               c.executedInstructions(),
                               c.feedbackModel().newlyHit());
    };
    for (const auto kind : {coverage::CoverageModelKind::Csr,
                            coverage::CoverageModelKind::HitCount,
                            coverage::CoverageModelKind::Composite}) {
        for (const auto sched : {fuzzer::SchedulerKind::Static,
                                 fuzzer::SchedulerKind::Bandit}) {
            EXPECT_EQ(run_once(kind, sched), run_once(kind, sched));
        }
    }
}

/**
 * Checkpoint/resume with auxiliary models and the bandit scheduler:
 * the resumed campaign's trajectory — including the model states the
 * corpus schedules on — matches the uninterrupted one.
 */
TEST(FeedbackCampaign, CheckpointResumeCarriesModelAndScheduler)
{
    auto opts = CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.coverageModel = coverage::CoverageModelKind::Composite;
    opts.feedbackWeightCsr = 4;

    Campaign whole(opts,
                   makeGen(41, fuzzer::SchedulerKind::Bandit));
    for (int i = 0; i < 12; ++i)
        whole.runIteration();

    soc::SnapshotWriter w;
    ASSERT_TRUE(whole.saveState(w));
    const auto image = w.buffer();

    Campaign resumed(opts,
                     makeGen(41, fuzzer::SchedulerKind::Bandit));
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(resumed.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());

    EXPECT_EQ(resumed.csrModel()->newlyHit(),
              whole.csrModel()->newlyHit());
    EXPECT_EQ(resumed.hitCountModel()->newlyHit(),
              whole.hitCountModel()->newlyHit());

    for (int i = 0; i < 12; ++i) {
        const IterationResult a = whole.runIteration();
        const IterationResult b = resumed.runIteration();
        ASSERT_EQ(b.newCoverage, a.newCoverage) << "iteration " << i;
        ASSERT_EQ(b.executedTotal, a.executedTotal);
    }
    EXPECT_TRUE(outcomeOf(whole) == outcomeOf(resumed));
    EXPECT_EQ(resumed.csrModel()->newlyHit(),
              whole.csrModel()->newlyHit());
}

TEST(FeedbackCampaign, CheckpointModelMismatchRejected)
{
    auto opts = CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.coverageModel = coverage::CoverageModelKind::Composite;
    Campaign donor(opts, makeGen(51));
    for (int i = 0; i < 3; ++i)
        donor.runIteration();
    soc::SnapshotWriter w;
    ASSERT_TRUE(donor.saveState(w));

    // A default (Mux) campaign refuses the composite checkpoint with
    // a diagnostic instead of misparsing the extra model state.
    auto mux_opts = CampaignOptions{};
    mux_opts.timing = soc::turboFuzzProfile();
    Campaign victim(mux_opts, makeGen(51));
    soc::SnapshotReader r(w.buffer());
    std::string error;
    EXPECT_FALSE(victim.loadState(r, &error));
    EXPECT_NE(error.find("coverage-model"), std::string::npos);

    // Crossed single-model kinds (csr checkpoint, edges campaign):
    // same model count, but the census distinguishes the kinds.
    auto csr_opts = CampaignOptions{};
    csr_opts.timing = soc::turboFuzzProfile();
    csr_opts.coverageModel = coverage::CoverageModelKind::Csr;
    Campaign csr_donor(csr_opts, makeGen(52));
    csr_donor.runIteration();
    soc::SnapshotWriter w2;
    ASSERT_TRUE(csr_donor.saveState(w2));
    auto edge_opts = CampaignOptions{};
    edge_opts.timing = soc::turboFuzzProfile();
    edge_opts.coverageModel = coverage::CoverageModelKind::HitCount;
    Campaign crossed(edge_opts, makeGen(52));
    soc::SnapshotReader r2(w2.buffer());
    EXPECT_FALSE(crossed.loadState(r2, &error));
    EXPECT_NE(error.find("census"), std::string::npos);
}

TEST(FeedbackCampaign, CheckpointSchedulerMismatchRejected)
{
    auto opts = CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    Campaign donor(opts, makeGen(53, fuzzer::SchedulerKind::Bandit));
    donor.runIteration();
    soc::SnapshotWriter w;
    ASSERT_TRUE(donor.saveState(w));

    Campaign victim(opts,
                    makeGen(53, fuzzer::SchedulerKind::Static));
    soc::SnapshotReader r(w.buffer());
    std::string error;
    EXPECT_FALSE(victim.loadState(r, &error));
    EXPECT_NE(error.find("scheduler"), std::string::npos);
}

} // namespace
} // namespace turbofuzz::harness
