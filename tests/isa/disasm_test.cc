/** @file Disassembler smoke tests. */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/encoding.hh"

namespace turbofuzz::isa
{
namespace
{

TEST(Disasm, RegisterNames)
{
    EXPECT_EQ(regName(0), "zero");
    EXPECT_EQ(regName(1), "ra");
    EXPECT_EQ(regName(2), "sp");
    EXPECT_EQ(regName(10), "a0");
    EXPECT_EQ(regName(31), "t6");
    EXPECT_EQ(fpRegName(0), "ft0");
    EXPECT_EQ(fpRegName(10), "fa0");
}

TEST(Disasm, CommonInstructions)
{
    Operands o;
    o.rd = 10;
    o.rs1 = 11;
    o.imm = -1;
    EXPECT_EQ(disassemble(encode(Opcode::Addi, o)), "addi a0, a1, -1");

    o = {};
    o.rd = 10;
    o.rs1 = 2;
    o.imm = 16;
    EXPECT_EQ(disassemble(encode(Opcode::Ld, o)), "ld a0, 16(sp)");

    o = {};
    o.rs1 = 2;
    o.rs2 = 10;
    o.imm = 8;
    EXPECT_EQ(disassemble(encode(Opcode::Sd, o)), "sd a0, 8(sp)");

    EXPECT_EQ(disassemble(encode(Opcode::Ecall, {})), "ecall");
    EXPECT_EQ(disassemble(encode(Opcode::Ebreak, {})), "ebreak");
}

TEST(Disasm, FpInstructionsUseFpRegNames)
{
    Operands o;
    o.rd = 10;
    o.rs1 = 11;
    o.rs2 = 12;
    const std::string s = disassemble(encode(Opcode::FaddS, o));
    EXPECT_EQ(s, "fadd.s fa0, fa1, fa2");

    o = {};
    o.rd = 10;
    o.rs1 = 11;
    const std::string mv = disassemble(encode(Opcode::FmvXW, o));
    EXPECT_EQ(mv, "fmv.x.w a0, fa1");
}

TEST(Disasm, InvalidWordsRenderAsData)
{
    EXPECT_EQ(disassemble(0), ".word 0x00000000");
    EXPECT_EQ(disassemble(0xFFFFFFFF), ".word 0xffffffff");
}

TEST(Disasm, EveryOpcodeProducesItsMnemonic)
{
    for (const auto &d : allDescs()) {
        Operands o;
        o.rd = 1;
        o.rs1 = 2;
        o.rs2 = 3;
        o.rs3 = 4;
        o.imm = (d.fmt == Format::B || d.fmt == Format::J) ? 4 : 1;
        o.csr = 0x003;
        const std::string s = disassemble(encode(d.op, o));
        EXPECT_EQ(s.rfind(std::string(d.mnemonic), 0), 0u)
            << "expected '" << s << "' to start with " << d.mnemonic;
    }
}

} // namespace
} // namespace turbofuzz::isa
