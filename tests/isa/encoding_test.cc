/** @file Encode/decode round-trip and reference-encoding tests. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/encoding.hh"
#include "isa/opcodes.hh"

namespace turbofuzz::isa
{
namespace
{

/** Known-good encodings cross-checked against the RISC-V spec. */
TEST(Encoding, ReferenceWords)
{
    Operands o;

    // addi a0, a1, -1  -> 0xfff58513
    o = {};
    o.rd = 10;
    o.rs1 = 11;
    o.imm = -1;
    EXPECT_EQ(encode(Opcode::Addi, o), 0xfff58513u);

    // add a0, a1, a2 -> 0x00c58533
    o = {};
    o.rd = 10;
    o.rs1 = 11;
    o.rs2 = 12;
    EXPECT_EQ(encode(Opcode::Add, o), 0x00c58533u);

    // lui t0, 0x12345 -> 0x123452b7
    o = {};
    o.rd = 5;
    o.imm = 0x12345;
    EXPECT_EQ(encode(Opcode::Lui, o), 0x123452b7u);

    // jal ra, 8 -> 0x008000ef
    o = {};
    o.rd = 1;
    o.imm = 8;
    EXPECT_EQ(encode(Opcode::Jal, o), 0x008000efu);

    // beq a0, a1, 16 -> 0x00b50863
    o = {};
    o.rs1 = 10;
    o.rs2 = 11;
    o.imm = 16;
    EXPECT_EQ(encode(Opcode::Beq, o), 0x00b50863u);

    // ld a0, 16(sp) -> 0x01013503
    o = {};
    o.rd = 10;
    o.rs1 = 2;
    o.imm = 16;
    EXPECT_EQ(encode(Opcode::Ld, o), 0x01013503u);

    // sd a0, 8(sp) -> 0x00a13423
    o = {};
    o.rs1 = 2;
    o.rs2 = 10;
    o.imm = 8;
    EXPECT_EQ(encode(Opcode::Sd, o), 0x00a13423u);

    // srai a0, a0, 63 -> 0x43f55513
    o = {};
    o.rd = 10;
    o.rs1 = 10;
    o.imm = 63;
    EXPECT_EQ(encode(Opcode::Srai, o), 0x43f55513u);

    // ecall / ebreak fixed words.
    EXPECT_EQ(encode(Opcode::Ecall, {}), 0x00000073u);
    EXPECT_EQ(encode(Opcode::Ebreak, {}), 0x00100073u);

    // fadd.s fa0, fa1, fa2 (rm=RNE) -> 0x00c58553
    o = {};
    o.rd = 10;
    o.rs1 = 11;
    o.rs2 = 12;
    o.rm = 0;
    EXPECT_EQ(encode(Opcode::FaddS, o), 0x00c58553u);

    // csrrw a0, fcsr(0x003), a1 -> 0x00359573
    o = {};
    o.rd = 10;
    o.rs1 = 11;
    o.csr = 0x003;
    EXPECT_EQ(encode(Opcode::Csrrw, o), 0x00359573u);

    // mul a0, a1, a2 -> 0x02c58533
    o = {};
    o.rd = 10;
    o.rs1 = 11;
    o.rs2 = 12;
    EXPECT_EQ(encode(Opcode::Mul, o), 0x02c58533u);

    // amoadd.w a0, a1, (a2) -> 0x00b6252f
    o = {};
    o.rd = 10;
    o.rs1 = 12;
    o.rs2 = 11;
    EXPECT_EQ(encode(Opcode::AmoaddW, o), 0x00b6252fu);
}

TEST(Encoding, DecodeInvalidWords)
{
    EXPECT_FALSE(decode(0x00000000u).valid);
    EXPECT_FALSE(decode(0xFFFFFFFFu).valid);
    // System opcode with unknown funct: wfi (not modelled).
    EXPECT_FALSE(decode(0x10500073u).valid);
}

TEST(Encoding, MretRoundTrip)
{
    EXPECT_EQ(encode(Opcode::Mret, {}), 0x30200073u);
    const Decoded d = decode(0x30200073u);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.op, Opcode::Mret);
}

/** Generate legal random operands for a given format. */
Operands
randomOperands(const InstrDesc &d, Rng &rng)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rng.range(32));
    o.rs1 = static_cast<uint8_t>(rng.range(32));
    o.rs2 = static_cast<uint8_t>(rng.range(32));
    o.rs3 = static_cast<uint8_t>(rng.range(32));
    o.rm = static_cast<uint8_t>(rng.range(5));
    o.csr = 0x003;
    switch (d.fmt) {
      case Format::I:
        o.imm = static_cast<int64_t>(rng.range(4096)) - 2048;
        break;
      case Format::IShift:
        o.imm = static_cast<int64_t>(rng.range(64));
        break;
      case Format::IShiftW:
        o.imm = static_cast<int64_t>(rng.range(32));
        break;
      case Format::S:
        o.imm = static_cast<int64_t>(rng.range(4096)) - 2048;
        break;
      case Format::B:
        o.imm = (static_cast<int64_t>(rng.range(4096)) - 2048) * 2;
        break;
      case Format::U:
        o.imm = static_cast<int64_t>(rng.range(1 << 20));
        break;
      case Format::J:
        o.imm =
            (static_cast<int64_t>(rng.range(1 << 20)) - (1 << 19)) * 2;
        break;
      case Format::CsrI:
        o.imm = static_cast<int64_t>(rng.range(32));
        break;
      case Format::Amo:
        o.aq = rng.chance(1, 2);
        o.rl = rng.chance(1, 2);
        break;
      default:
        break;
    }
    return o;
}

/** Property: encode(decode(x)) == x field-wise for every opcode. */
class RoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RoundTrip, EncodeDecode)
{
    const InstrDesc &d = allDescs()[GetParam()];
    Rng rng(0xC0FFEE ^ GetParam());
    for (int i = 0; i < 200; ++i) {
        const Operands in = randomOperands(d, rng);
        const uint32_t word = encode(d.op, in);
        const Decoded out = decode(word);
        ASSERT_TRUE(out.valid)
            << d.mnemonic << " word 0x" << std::hex << word;
        ASSERT_EQ(out.op, d.op) << d.mnemonic << " decoded as "
                                << out.desc->mnemonic;
        // Field-wise comparison honoring which fields are live.
        const bool has_rd_field =
            d.fmt != Format::Sys && d.fmt != Format::CsrI &&
            d.fmt != Format::S && d.fmt != Format::B;
        if (has_rd_field)
            EXPECT_EQ(out.ops.rd & 0x1F, in.rd & 0x1F) << d.mnemonic;
        if (d.has(FlagReadsRs1))
            EXPECT_EQ(out.ops.rs1 & 0x1F, in.rs1 & 0x1F) << d.mnemonic;
        if (d.has(FlagReadsRs2) && d.rs2Field < 0 && d.fmt != Format::Amo)
            EXPECT_EQ(out.ops.rs2 & 0x1F, in.rs2 & 0x1F) << d.mnemonic;
        if (d.fmt == Format::R4)
            EXPECT_EQ(out.ops.rs3 & 0x1F, in.rs3 & 0x1F) << d.mnemonic;
        if (d.has(FlagHasRm))
            EXPECT_EQ(out.ops.rm, in.rm) << d.mnemonic;
        switch (d.fmt) {
          case Format::I:
          case Format::IShift:
          case Format::IShiftW:
          case Format::S:
          case Format::B:
          case Format::U:
          case Format::J:
          case Format::CsrI:
            EXPECT_EQ(out.ops.imm, in.imm) << d.mnemonic;
            break;
          case Format::Amo:
            EXPECT_EQ(out.ops.aq, in.aq) << d.mnemonic;
            EXPECT_EQ(out.ops.rl, in.rl) << d.mnemonic;
            break;
          default:
            break;
        }
        if (d.fmt == Format::Csr || d.fmt == Format::CsrI)
            EXPECT_EQ(out.ops.csr, in.csr) << d.mnemonic;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, RoundTrip,
    ::testing::Range<size_t>(0, numOpcodes()),
    [](const ::testing::TestParamInfo<size_t> &param_info) {
        std::string name(
            allDescs()[param_info.param].mnemonic);
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

} // namespace
} // namespace turbofuzz::isa
