/** @file Instruction-library configuration tests. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "isa/instruction_library.hh"

namespace turbofuzz::isa
{
namespace
{

TEST(InstructionLibrary, DefaultsToFullSet)
{
    InstructionLibrary lib;
    EXPECT_EQ(lib.activeCount(), numOpcodes());
}

TEST(InstructionLibrary, DisableCategoryRemovesItsOpcodes)
{
    InstructionLibrary lib;
    lib.setExtEnabled(Ext::F, false);
    lib.setExtEnabled(Ext::D, false);
    for (const auto &d : allDescs()) {
        const bool fp_ext = d.ext == Ext::F || d.ext == Ext::D;
        EXPECT_EQ(lib.contains(d.op), !fp_ext) << d.mnemonic;
    }
    EXPECT_FALSE(lib.extEnabled(Ext::F));
    lib.setExtEnabled(Ext::F, true);
    EXPECT_TRUE(lib.contains(Opcode::FaddS));
}

TEST(InstructionLibrary, ExcludeSingleOpcode)
{
    InstructionLibrary lib;
    lib.exclude(Opcode::Ecall);
    lib.exclude(Opcode::Ebreak);
    EXPECT_FALSE(lib.contains(Opcode::Ecall));
    EXPECT_TRUE(lib.contains(Opcode::Fence));
    lib.include(Opcode::Ecall);
    EXPECT_TRUE(lib.contains(Opcode::Ecall));
}

TEST(InstructionLibrary, PickHonorsFiltering)
{
    InstructionLibrary lib;
    lib.setExtEnabled(Ext::F, false);
    lib.setExtEnabled(Ext::D, false);
    lib.setExtEnabled(Ext::A, false);
    lib.setExtEnabled(Ext::M, false);
    lib.setExtEnabled(Ext::Zicsr, false);
    lib.setExtEnabled(Ext::System, false);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const Opcode op = lib.pick(rng);
        EXPECT_EQ(descOf(op).ext, Ext::I);
    }
}

TEST(InstructionLibrary, WeightsBiasSelection)
{
    InstructionLibrary lib;
    lib.setExtWeight(Ext::M, 10.0);
    lib.setExtWeight(Ext::I, 0.1);
    lib.setExtEnabled(Ext::A, false);
    lib.setExtEnabled(Ext::F, false);
    lib.setExtEnabled(Ext::D, false);
    lib.setExtEnabled(Ext::Zicsr, false);
    lib.setExtEnabled(Ext::System, false);

    Rng rng(2);
    std::map<Ext, int> hits;
    for (int i = 0; i < 20000; ++i)
        hits[descOf(lib.pick(rng)).ext]++;
    // M has 13 ops at weight 10 = 130; I has 52 ops at 0.1 = 5.2.
    EXPECT_GT(hits[Ext::M], hits[Ext::I] * 10);
}

TEST(InstructionLibrary, ZeroWeightActsAsDisable)
{
    InstructionLibrary lib;
    lib.setExtWeight(Ext::A, 0.0);
    EXPECT_FALSE(lib.contains(Opcode::AmoaddW));
}

TEST(InstructionLibrary, PickCoversActiveSet)
{
    InstructionLibrary lib;
    lib.setExtEnabled(Ext::I, false);
    lib.setExtEnabled(Ext::M, false);
    lib.setExtEnabled(Ext::A, false);
    lib.setExtEnabled(Ext::F, false);
    lib.setExtEnabled(Ext::D, false);
    lib.setExtEnabled(Ext::System, false);
    // Only Zicsr's 6 opcodes remain; a modest sample hits them all.
    Rng rng(3);
    std::set<Opcode> seen;
    for (int i = 0; i < 600; ++i)
        seen.insert(lib.pick(rng));
    EXPECT_EQ(seen.size(), 6u);
}

} // namespace
} // namespace turbofuzz::isa
