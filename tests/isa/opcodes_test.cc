/** @file Descriptor-table consistency tests. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "isa/encoding.hh"
#include "isa/opcodes.hh"

namespace turbofuzz::isa
{
namespace
{

TEST(Opcodes, TableCoversEveryEnumValue)
{
    EXPECT_EQ(allDescs().size(), numOpcodes());
    std::set<Opcode> seen;
    for (const auto &d : allDescs())
        EXPECT_TRUE(seen.insert(d.op).second)
            << "duplicate " << d.mnemonic;
}

TEST(Opcodes, DescOfIsConsistent)
{
    for (const auto &d : allDescs())
        EXPECT_EQ(&descOf(d.op), &d);
}

TEST(Opcodes, MnemonicsUnique)
{
    std::set<std::string_view> names;
    for (const auto &d : allDescs())
        EXPECT_TRUE(names.insert(d.mnemonic).second)
            << "duplicate mnemonic " << d.mnemonic;
}

TEST(Opcodes, MatchMaskDisjointness)
{
    // No two instructions may claim the same canonical word: for each
    // pair with the same major opcode, the match of one must not
    // satisfy the (match, mask) of the other.
    const auto &descs = allDescs();
    for (const auto &a : descs) {
        const MatchMask ma = matchMaskOf(a.op);
        for (const auto &b : descs) {
            if (a.op == b.op || a.opcode7 != b.opcode7)
                continue;
            const MatchMask mb = matchMaskOf(b.op);
            EXPECT_FALSE((ma.match & mb.mask) == mb.match &&
                         (mb.match & ma.mask) == ma.match)
                << a.mnemonic << " and " << b.mnemonic
                << " have overlapping encodings";
        }
    }
}

TEST(Opcodes, MatchIsInsideMask)
{
    for (const auto &d : allDescs()) {
        const MatchMask mm = matchMaskOf(d.op);
        EXPECT_EQ(mm.match & ~mm.mask, 0u) << d.mnemonic;
        EXPECT_EQ(mm.mask & 0x7F, 0x7Fu) << d.mnemonic;
    }
}

TEST(Opcodes, FlagSanity)
{
    for (const auto &d : allDescs()) {
        // Control-flow classification is exclusive.
        const int cf = !!(d.flags & FlagBranch) + !!(d.flags & FlagJal) +
                       !!(d.flags & FlagJalr);
        EXPECT_LE(cf, 1) << d.mnemonic;
        // FP register usage implies the FP unit.
        if (d.flags & (FlagFpRd | FlagFpRs1 | FlagFpRs2 | FlagFpRs3))
            EXPECT_TRUE(d.has(FlagFp)) << d.mnemonic;
        // Branches never write rd.
        if (d.has(FlagBranch))
            EXPECT_FALSE(d.has(FlagWritesRd)) << d.mnemonic;
        // Stores never write rd (except AMO/SC which do).
        if (d.has(FlagStore) && !d.has(FlagAtomic))
            EXPECT_FALSE(d.has(FlagWritesRd) && !d.has(FlagFp))
                << d.mnemonic;
    }
}

TEST(Opcodes, ExtensionCounts)
{
    std::map<Ext, int> count;
    for (const auto &d : allDescs())
        count[d.ext]++;
    EXPECT_EQ(count[Ext::I], 49);     // RV64I base (less fence/ecall/ebreak)
    EXPECT_EQ(count[Ext::M], 13);     // RV64M
    EXPECT_EQ(count[Ext::A], 22);     // RV64A
    EXPECT_EQ(count[Ext::F], 30);     // RV64F
    EXPECT_EQ(count[Ext::D], 32);     // RV64D
    EXPECT_EQ(count[Ext::Zicsr], 6);  // Zicsr
    EXPECT_EQ(count[Ext::System], 4); // fence/ecall/ebreak/mret
}

TEST(Opcodes, ExtNames)
{
    EXPECT_EQ(extName(Ext::I), "I");
    EXPECT_EQ(extName(Ext::Zicsr), "Zicsr");
    EXPECT_EQ(extName(Ext::System), "System");
}

TEST(Opcodes, ControlFlowHelpers)
{
    EXPECT_TRUE(descOf(Opcode::Beq).isControlFlow());
    EXPECT_TRUE(descOf(Opcode::Jal).isControlFlow());
    EXPECT_TRUE(descOf(Opcode::Jalr).isControlFlow());
    EXPECT_FALSE(descOf(Opcode::Add).isControlFlow());
    EXPECT_TRUE(descOf(Opcode::Ld).isMemAccess());
    EXPECT_TRUE(descOf(Opcode::Sd).isMemAccess());
    EXPECT_FALSE(descOf(Opcode::Add).isMemAccess());
}

} // namespace
} // namespace turbofuzz::isa
