/**
 * @file
 * Provenance layer tests: point-key packing, first-hit ledger
 * semantics (min-wins merge, checkpoint round trip), the forensics
 * ring, seed genealogy, and the observer contract — provenance on vs
 * off must not change campaign or fleet results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fleet_config.hh"
#include "coverage/provenance.hh"
#include "fleet/orchestrator.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"
#include "soc/snapshot.hh"
#include "telemetry/forensics.hh"

namespace turbofuzz
{
namespace
{

using coverage::FirstHit;
using coverage::FirstHitLedger;
using coverage::PointSpace;
using coverage::pointKey;
using telemetry::ForensicsEvent;
using telemetry::ForensicsKind;
using telemetry::ForensicsRing;

// --- Point keys ------------------------------------------------------

TEST(ProvenancePointKey, RoundTrip)
{
    const uint64_t k = pointKey(PointSpace::Mux, 0x123456, 0xDEADBEEF);
    EXPECT_EQ(coverage::pointSpace(k), PointSpace::Mux);
    EXPECT_EQ(coverage::pointModule(k), 0x123456u);
    EXPECT_EQ(coverage::pointIndex(k), 0xDEADBEEFu);

    const uint64_t e = pointKey(PointSpace::Edge, 7, 42);
    EXPECT_EQ(coverage::pointSpace(e), PointSpace::Edge);
    EXPECT_EQ(coverage::pointModule(e), 7u);
    EXPECT_EQ(coverage::pointIndex(e), 42u);

    // Distinct spaces never collide even with equal module/index.
    EXPECT_NE(pointKey(PointSpace::Mux, 1, 1),
              pointKey(PointSpace::Csr, 1, 1));
    EXPECT_STREQ(coverage::pointSpaceName(PointSpace::Csr), "csr");
}

// --- First-hit ledger ------------------------------------------------

/** A ledger holding one attributed hit per (key, context) pair. */
FirstHitLedger
ledgerWith(std::vector<std::tuple<uint64_t, double, uint32_t,
                                  uint64_t>>
               hits)
{
    FirstHitLedger l;
    for (const auto &[key, t, shard, iter] : hits) {
        l.setShard(shard);
        l.setContext(iter, /*seed=*/iter * 10, /*op=*/1, t,
                     /*wall=*/999);
        l.record(key);
    }
    return l;
}

void
expectLedgersEqual(const FirstHitLedger &a, const FirstHitLedger &b)
{
    ASSERT_EQ(a.size(), b.size());
    const auto ea = a.sortedEntries();
    const auto eb = b.sortedEntries();
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].first, eb[i].first);
        EXPECT_DOUBLE_EQ(ea[i].second.simTimeSec,
                         eb[i].second.simTimeSec);
        EXPECT_EQ(ea[i].second.iteration, eb[i].second.iteration);
        EXPECT_EQ(ea[i].second.shard, eb[i].second.shard);
        EXPECT_EQ(ea[i].second.seedId, eb[i].second.seedId);
        EXPECT_EQ(ea[i].second.op, eb[i].second.op);
    }
}

TEST(FirstHitLedger, RecordKeepsEarliestWithinCampaign)
{
    FirstHitLedger l;
    l.setContext(1, 10, 1, 0.5, 0);
    l.record(77);
    // Re-marking the same point later (warm prologue, repeated
    // sweeps) must not overwrite the original attribution.
    l.setContext(9, 90, 2, 3.5, 0);
    l.record(77);
    ASSERT_EQ(l.size(), 1u);
    const FirstHit *hit = l.find(77);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->iteration, 1u);
    EXPECT_DOUBLE_EQ(hit->simTimeSec, 0.5);
    EXPECT_DOUBLE_EQ(l.lastHitSimSec(), 0.5);
}

TEST(FirstHitLedger, MergeIsMinWins)
{
    FirstHitLedger a = ledgerWith({{100, 2.0, 0, 5}});
    const FirstHitLedger b = ledgerWith({{100, 1.0, 1, 9}});
    a.merge(b);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a.find(100)->shard, 1u);
    EXPECT_DOUBLE_EQ(a.find(100)->simTimeSec, 1.0);

    // Equal times: the lower shard index wins (deterministic
    // tie-break, independent of merge order).
    FirstHitLedger c = ledgerWith({{200, 1.5, 2, 1}});
    const FirstHitLedger d = ledgerWith({{200, 1.5, 0, 8}});
    c.merge(d);
    EXPECT_EQ(c.find(200)->shard, 0u);
}

TEST(FirstHitLedger, MergeAssociativeUnderShardReordering)
{
    // Three shard ledgers with overlapping keys and distinct
    // attributions; every merge order must converge to the same
    // global ledger.
    const FirstHitLedger s0 =
        ledgerWith({{1, 0.5, 0, 1}, {2, 2.0, 0, 4}, {3, 1.0, 0, 2}});
    const FirstHitLedger s1 =
        ledgerWith({{2, 1.0, 1, 2}, {3, 1.0, 1, 1}, {4, 3.0, 1, 6}});
    const FirstHitLedger s2 =
        ledgerWith({{1, 0.25, 2, 1}, {4, 2.5, 2, 5}, {5, 4.0, 2, 8}});

    FirstHitLedger fwd; // (s0 + s1) + s2
    fwd.merge(s0);
    fwd.merge(s1);
    fwd.merge(s2);

    FirstHitLedger rev; // s2 + (s1 + s0)
    FirstHitLedger s10;
    s10.merge(s1);
    s10.merge(s0);
    rev.merge(s2);
    rev.merge(s10);

    expectLedgersEqual(fwd, rev);
    EXPECT_EQ(fwd.size(), 5u);
    EXPECT_EQ(fwd.find(1)->shard, 2u); // earliest time wins
    EXPECT_EQ(fwd.find(2)->shard, 1u);
    EXPECT_EQ(fwd.find(3)->shard, 0u); // tie: lower shard
    EXPECT_DOUBLE_EQ(fwd.lastHitSimSec(), 4.0);
}

TEST(FirstHitLedger, SaveLoadRoundTrip)
{
    const FirstHitLedger src =
        ledgerWith({{1, 0.5, 0, 1}, {900, 2.5, 3, 7}});
    soc::SnapshotWriter out;
    src.saveState(out);

    FirstHitLedger dst;
    soc::SnapshotReader in(out.buffer());
    std::string error;
    ASSERT_TRUE(dst.loadState(in, &error)) << error;
    expectLedgersEqual(src, dst);
}

TEST(FirstHitLedger, MalformedImagesRejected)
{
    const FirstHitLedger src = ledgerWith({{5, 1.0, 0, 1}});
    soc::SnapshotWriter out;
    src.saveState(out);
    std::vector<uint8_t> bytes = out.buffer();

    // Truncated entry.
    {
        std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 4);
        FirstHitLedger l;
        soc::SnapshotReader in(cut);
        std::string error;
        EXPECT_FALSE(l.loadState(in, &error));
        EXPECT_FALSE(error.empty());
        EXPECT_TRUE(l.empty()); // failed load leaves it empty
    }
    // Absurd count must be rejected before any allocation.
    {
        std::vector<uint8_t> big = bytes;
        big[0] = 0xFF;
        big[1] = 0xFF;
        big[2] = 0xFF;
        big[3] = 0x7F;
        FirstHitLedger l;
        soc::SnapshotReader in(big);
        EXPECT_FALSE(l.loadState(in));
    }
}

// --- Forensics ring --------------------------------------------------

ForensicsEvent
event(uint64_t iter, ForensicsKind kind, uint64_t a)
{
    ForensicsEvent ev;
    ev.simTimeSec = 0.1 * static_cast<double>(iter);
    ev.iteration = iter;
    ev.kind = static_cast<uint8_t>(kind);
    ev.a = a;
    return ev;
}

TEST(ForensicsRing, WrapKeepsMostRecent)
{
    ForensicsRing ring(4);
    for (uint64_t i = 0; i < 10; ++i)
        ring.push(event(i, ForensicsKind::SeedSelect, i));
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 4u);
    const auto events = ring.chronological();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first: iterations 6..9 survive.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].iteration, 6 + i);
}

TEST(ForensicsRing, JsonNamesKinds)
{
    ForensicsRing ring(8);
    ring.push(event(1, ForensicsKind::SeedSelect, 42));
    ring.push(event(2, ForensicsKind::Mismatch, 7));
    const std::string json = ring.toJson();
    EXPECT_NE(json.find("\"kind\":\"seed_select\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"mismatch\""), std::string::npos);
    EXPECT_NE(json.find("\"iteration\":2"), std::string::npos);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
}

TEST(ForensicsRing, SaveLoadRoundTripAfterWrap)
{
    ForensicsRing src(3);
    for (uint64_t i = 0; i < 7; ++i)
        src.push(event(i, ForensicsKind::CoverageDelta, i * 2));
    soc::SnapshotWriter out;
    src.saveState(out);

    ForensicsRing dst(3);
    soc::SnapshotReader in(out.buffer());
    std::string error;
    ASSERT_TRUE(dst.loadState(in, &error)) << error;
    EXPECT_EQ(dst.toJson(), src.toJson());

    // Pushes after restore continue the same eviction order.
    src.push(event(100, ForensicsKind::Trap, 1));
    dst.push(event(100, ForensicsKind::Trap, 1));
    EXPECT_EQ(dst.toJson(), src.toJson());
}

TEST(ForensicsRing, MalformedImageRejected)
{
    ForensicsRing src(2);
    src.push(event(1, ForensicsKind::SeedSelect, 0));
    soc::SnapshotWriter out;
    src.saveState(out);
    std::vector<uint8_t> bytes = out.buffer();
    std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 3);
    ForensicsRing dst(2);
    soc::SnapshotReader in(cut);
    std::string error;
    EXPECT_FALSE(dst.loadState(in, &error));
    EXPECT_FALSE(error.empty());
}

// --- Campaign integration --------------------------------------------

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = harness::makeDefaultLibrary();
    return l;
}

std::unique_ptr<fuzzer::TurboFuzzGenerator>
makeGen(uint64_t seed, uint32_t ipi = 1000)
{
    fuzzer::FuzzerOptions o;
    o.seed = seed;
    o.instrsPerIteration = ipi;
    return std::make_unique<fuzzer::TurboFuzzGenerator>(o, &lib());
}

harness::CampaignOptions
campaignOpts()
{
    harness::CampaignOptions o;
    o.timing = soc::turboFuzzProfile();
    return o;
}

/** Corpus seeds of a campaign's TurboFuzz generator. */
const std::vector<fuzzer::Seed> &
corpusSeeds(harness::Campaign &c)
{
    auto *tfg =
        dynamic_cast<fuzzer::TurboFuzzGenerator *>(&c.generator());
    EXPECT_NE(tfg, nullptr);
    return tfg->underlying().corpus().entries();
}

/**
 * Acceptance: the observer contract. A provenance-recording campaign
 * must produce bit-identical results to a plain one — counters,
 * coverage, every corpus seed (including genealogy, which is always
 * stamped) and every reproducer byte.
 */
TEST(ProvenanceCampaign, ObserverContract)
{
    harness::CampaignOptions on_opts = campaignOpts();
    on_opts.coreKind = core::CoreKind::Boom;
    on_opts.bugs = core::BugSet::single(core::BugId::B1);
    harness::CampaignOptions off_opts = on_opts;
    on_opts.provenance = true;

    harness::Campaign on(on_opts, makeGen(4));
    harness::Campaign off(off_opts, makeGen(4));
    for (int i = 0; i < 250; ++i) {
        const harness::IterationResult a = on.runIteration();
        const harness::IterationResult b = off.runIteration();
        ASSERT_EQ(a.newCoverage, b.newCoverage) << "iteration " << i;
        ASSERT_EQ(a.executedTotal, b.executedTotal)
            << "iteration " << i;
        ASSERT_EQ(a.mismatch, b.mismatch) << "iteration " << i;
    }

    EXPECT_EQ(on.executedInstructions(), off.executedInstructions());
    EXPECT_EQ(on.generatedInstructions(),
              off.generatedInstructions());
    EXPECT_EQ(on.coverageMap().totalCovered(),
              off.coverageMap().totalCovered());
    EXPECT_DOUBLE_EQ(on.nowSec(), off.nowSec());
    ASSERT_GT(on.mismatchedIterations(), 0u)
        << "test needs a mismatch to compare reproducers";
    EXPECT_EQ(on.mismatchedIterations(), off.mismatchedIterations());

    // Corpus bytes: identical seeds including the genealogy fields
    // (always stamped, so they cannot encode the provenance flag).
    const auto &sa = corpusSeeds(on);
    const auto &sb = corpusSeeds(off);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].serialize(), sb[i].serialize())
            << "corpus seed " << i;
    }

    // Reproducer bytes.
    ASSERT_EQ(on.reproducers().size(), off.reproducers().size());
    for (size_t i = 0; i < on.reproducers().size(); ++i) {
        EXPECT_EQ(on.reproducers()[i].serialize(),
                  off.reproducers()[i].serialize())
            << "reproducer " << i;
    }

    // The recording side actually recorded.
    EXPECT_FALSE(on.provenanceLedger().empty());
    EXPECT_FALSE(on.forensics().empty());
    EXPECT_EQ(on.forensicsDumps().size(), on.reproducers().size());
    EXPECT_TRUE(off.provenanceLedger().empty());
    EXPECT_TRUE(off.forensics().empty());
    EXPECT_TRUE(off.forensicsDumps().empty());
}

TEST(ProvenanceCampaign, GenealogyStampedOnArchivedSeeds)
{
    harness::CampaignOptions opts = campaignOpts();
    opts.provenance = true;
    harness::Campaign c(opts, makeGen(11));
    for (int i = 0; i < 120; ++i)
        c.runIteration();

    const auto &seeds = corpusSeeds(c);
    ASSERT_FALSE(seeds.empty());
    bool saw_descendant = false;
    for (const fuzzer::Seed &s : seeds) {
        EXPECT_LE(s.originOp, 3u);
        if (s.parentId != 0) {
            saw_descendant = true;
            EXPECT_GE(s.lineageDepth, 1u);
            // A mutation-derived seed carries a mutation operator.
            EXPECT_GE(s.originOp, 1u);
        } else if (s.lineageDepth == 0) {
            // Lineage roots are direct generations (or imports).
            EXPECT_EQ(s.originOp, 0u);
        }
    }
    EXPECT_TRUE(saw_descendant)
        << "expected at least one mutation-descended seed";
}

TEST(ProvenanceCampaign, ImportedSeedsBecomeLineageRoots)
{
    fuzzer::Corpus corpus(8, fuzzer::SchedulingPolicy::CoverageGuided);
    fuzzer::Seed foreign;
    foreign.id = 3;
    foreign.parentId = 55; // exporting shard's id space
    foreign.originOp = 2;
    foreign.lineageDepth = 4;
    foreign.coverageIncrement = 10;
    fuzzer::SeedBlock blk;
    blk.insns = {0x13, 0x93};
    foreign.blocks.push_back(blk);

    uint64_t next_id = 100;
    ASSERT_EQ(corpus.importSeeds({foreign}, next_id), 1u);
    ASSERT_EQ(corpus.size(), 1u);
    const fuzzer::Seed &in = corpus.entries()[0];
    EXPECT_EQ(in.id, 100u);
    // The foreign parent id would alias an unrelated local seed, so
    // imports become lineage roots but keep depth and operator.
    EXPECT_EQ(in.parentId, 0u);
    EXPECT_EQ(in.lineageDepth, 4u);
    EXPECT_EQ(in.originOp, 2u);
}

TEST(ProvenanceCampaign, CheckpointCarriesLedgerAndForensics)
{
    harness::CampaignOptions opts = campaignOpts();
    opts.provenance = true;

    harness::Campaign src(opts, makeGen(21));
    for (int i = 0; i < 60; ++i)
        src.runIteration();
    ASSERT_FALSE(src.provenanceLedger().empty());

    soc::SnapshotWriter out;
    ASSERT_TRUE(src.saveState(out));

    harness::Campaign dst(opts, makeGen(21));
    soc::SnapshotReader in(out.buffer());
    std::string error;
    ASSERT_TRUE(dst.loadState(in, &error)) << error;
    expectLedgersEqual(src.provenanceLedger(),
                       dst.provenanceLedger());
    EXPECT_EQ(dst.forensics().toJson(), src.forensics().toJson());

    // Resumed first-hit attribution equals uninterrupted: running
    // both further must extend the ledgers identically.
    for (int i = 0; i < 40; ++i) {
        src.runIteration();
        dst.runIteration();
    }
    expectLedgersEqual(src.provenanceLedger(),
                       dst.provenanceLedger());
}

TEST(ProvenanceCampaign, CheckpointCensusMismatchRejected)
{
    harness::CampaignOptions on_opts = campaignOpts();
    on_opts.provenance = true;
    harness::Campaign src(on_opts, makeGen(5));
    for (int i = 0; i < 10; ++i)
        src.runIteration();
    soc::SnapshotWriter out;
    ASSERT_TRUE(src.saveState(out));

    harness::CampaignOptions off_opts = campaignOpts();
    harness::Campaign dst(off_opts, makeGen(5));
    soc::SnapshotReader in(out.buffer());
    std::string error;
    EXPECT_FALSE(dst.loadState(in, &error));
    EXPECT_NE(error.find("provenance census"), std::string::npos)
        << error;
}

// --- Fleet integration -----------------------------------------------

FleetConfig
fleetConfig(unsigned shards, double budget = 3.0,
            double epoch = 0.75, uint64_t seed = 7)
{
    FleetConfig fc;
    fc.fleetSeed = seed;
    fc.shardCount = shards;
    fc.budgetSec = budget;
    fc.epochSec = epoch;
    return fc;
}

harness::CampaignOptions
buggyOpts()
{
    harness::CampaignOptions o = campaignOpts();
    o.coreKind = core::CoreKind::Boom;
    o.bugs = core::BugSet::single(core::BugId::B1);
    return o;
}

fuzzer::FuzzerOptions
fuzzerOpts()
{
    fuzzer::FuzzerOptions o;
    o.instrsPerIteration = 1000;
    return o;
}

void
expectFleetResultsIdentical(const fleet::FleetResult &a,
                            const fleet::FleetResult &b)
{
    EXPECT_EQ(a.totals.iterations, b.totals.iterations);
    EXPECT_EQ(a.totals.executedInstrs, b.totals.executedInstrs);
    EXPECT_EQ(a.totals.generatedInstrs, b.totals.generatedInstrs);
    EXPECT_EQ(a.totals.mismatches, b.totals.mismatches);
    EXPECT_EQ(a.mergedFinalCoverage, b.mergedFinalCoverage);
    EXPECT_EQ(a.seedsExchanged, b.seedsExchanged);
    EXPECT_EQ(a.seedsAdmitted, b.seedsAdmitted);
    EXPECT_EQ(a.reproducersHarvested, b.reproducersHarvested);
    ASSERT_EQ(a.mergedCoverage.samples().size(),
              b.mergedCoverage.samples().size());
    for (size_t i = 0; i < a.mergedCoverage.samples().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.mergedCoverage.samples()[i].value,
                         b.mergedCoverage.samples()[i].value)
            << i;
    }
    ASSERT_EQ(a.mismatches.size(), b.mismatches.size());
    for (size_t i = 0; i < a.mismatches.size(); ++i) {
        EXPECT_EQ(a.mismatches[i].shard, b.mismatches[i].shard);
        EXPECT_EQ(a.mismatches[i].mismatch.pc,
                  b.mismatches[i].mismatch.pc);
    }
    ASSERT_EQ(a.bugTable.size(), b.bugTable.size());
    for (size_t i = 0; i < a.bugTable.size(); ++i) {
        EXPECT_EQ(a.bugTable[i].signature, b.bugTable[i].signature);
        EXPECT_EQ(a.bugTable[i].hits, b.bugTable[i].hits);
    }
}

/** Acceptance: fleet results are bit-identical provenance on vs off. */
TEST(FleetProvenance, OnVsOffResultsIdentical)
{
    FleetConfig off_fc = fleetConfig(2);
    FleetConfig on_fc = off_fc;
    on_fc.provenance = true;

    fleet::FleetOrchestrator off(off_fc, buggyOpts(), fuzzerOpts(),
                                 &lib());
    const fleet::FleetResult off_r = off.run();
    fleet::FleetOrchestrator on(on_fc, buggyOpts(), fuzzerOpts(),
                                &lib());
    const fleet::FleetResult on_r = on.run();

    expectFleetResultsIdentical(off_r, on_r);
    EXPECT_FALSE(off_r.provenanceOn);
    EXPECT_TRUE(on_r.provenanceOn);
    EXPECT_GT(on_r.firstHitsRecorded, 0u);
    EXPECT_GT(on_r.lastNewCoverageSimSec, 0.0);
    ASSERT_EQ(on_r.shardPlateauAgeSec.size(), 2u);
    for (double age : on_r.shardPlateauAgeSec)
        EXPECT_GE(age, 0.0);
    EXPECT_FALSE(on.provenanceLedger().empty());
    EXPECT_TRUE(off.provenanceLedger().empty());
}

/**
 * Acceptance: the ledger survives checkpoint/resume — a resumed
 * fleet's first-hit attribution (global and per-shard) equals the
 * uninterrupted run's.
 */
TEST(FleetProvenance, ResumedLedgerMatchesUninterrupted)
{
    const std::string path =
        testing::TempDir() + "/tf_prov_resume.ckpt";
    auto config = [&](bool checkpointing) {
        FleetConfig fc = fleetConfig(2, 3.0, 0.75, 11);
        fc.provenance = true;
        if (checkpointing) {
            fc.checkpointEveryEpochs = 1;
            fc.checkpointPath = path;
        }
        return fc;
    };

    fleet::FleetOrchestrator uninterrupted(config(false), buggyOpts(),
                                           fuzzerOpts(), &lib());
    const fleet::FleetResult reference = uninterrupted.run();

    {
        FleetConfig fc = config(true);
        fc.haltAfterEpochs = 2;
        fleet::FleetOrchestrator killed(fc, buggyOpts(), fuzzerOpts(),
                                        &lib());
        killed.run();
    }

    std::string error;
    const auto snap = soc::Snapshot::tryLoadFile(path, &error);
    ASSERT_TRUE(snap.has_value()) << error;
    fleet::FleetOrchestrator resumed(config(false), buggyOpts(),
                                     fuzzerOpts(), &lib());
    ASSERT_TRUE(resumed.restoreCheckpoint(*snap, &error)) << error;
    const fleet::FleetResult final_result = resumed.run();

    expectFleetResultsIdentical(reference, final_result);
    expectLedgersEqual(uninterrupted.provenanceLedger(),
                       resumed.provenanceLedger());
    for (unsigned i = 0; i < 2; ++i) {
        SCOPED_TRACE(i);
        expectLedgersEqual(
            uninterrupted.shard(i).campaign().provenanceLedger(),
            resumed.shard(i).campaign().provenanceLedger());
    }
    EXPECT_EQ(reference.firstHitsRecorded,
              final_result.firstHitsRecorded);
    EXPECT_DOUBLE_EQ(reference.lastNewCoverageSimSec,
                     final_result.lastNewCoverageSimSec);
    std::remove(path.c_str());
}

TEST(FleetProvenance, CheckpointCensusMismatchRejected)
{
    FleetConfig on_fc = fleetConfig(1, 1.5, 0.75);
    on_fc.provenance = true;
    fleet::FleetOrchestrator src(on_fc, campaignOpts(), fuzzerOpts(),
                                 &lib());
    src.run();
    std::string error;
    const auto snap = src.makeCheckpoint(&error);
    ASSERT_TRUE(snap.has_value()) << error;

    FleetConfig off_fc = fleetConfig(1, 1.5, 0.75);
    fleet::FleetOrchestrator dst(off_fc, campaignOpts(), fuzzerOpts(),
                                 &lib());
    EXPECT_FALSE(dst.restoreCheckpoint(*snap, &error));
    EXPECT_NE(error.find("provenance census"), std::string::npos)
        << error;
}

/** The provenance-out artifact exists, carries the schema tag and a
 *  non-empty never-hit target list. */
TEST(FleetProvenance, ReportWritten)
{
    const std::string path =
        testing::TempDir() + "/tf_provenance.json";
    FleetConfig fc = fleetConfig(2, 1.5, 0.75);
    fc.provenanceOut = path;
    fc.provenance = true;
    fleet::FleetOrchestrator orch(fc, campaignOpts(), fuzzerOpts(),
                                  &lib());
    orch.run();

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string report = ss.str();
    EXPECT_NE(report.find("\"schema\":\"turbofuzz.provenance.v1\""),
              std::string::npos);
    EXPECT_NE(report.find("\"never_hit\""), std::string::npos);
    EXPECT_NE(report.find("\"time_to_hit\""), std::string::npos);
    EXPECT_NE(report.find("\"lineage_depth_histogram\""),
              std::string::npos);
    EXPECT_NE(report.find("\"operators\""), std::string::npos);
    std::remove(path.c_str());
}

// --- JSONL cadence across checkpoint/resume --------------------------

/** (t_sim, epoch) pairs of every line in a stats JSONL file. */
std::vector<std::pair<double, long>>
statsCadence(const std::string &path)
{
    std::vector<std::pair<double, long>> out;
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    std::string line;
    while (std::getline(f, line)) {
        const auto t_pos = line.find("\"t_sim\":");
        const auto e_pos = line.find("\"epoch\":");
        EXPECT_NE(t_pos, std::string::npos) << line;
        EXPECT_NE(e_pos, std::string::npos) << line;
        if (t_pos == std::string::npos || e_pos == std::string::npos)
            continue;
        out.emplace_back(std::stod(line.substr(t_pos + 8)),
                         std::stol(line.substr(e_pos + 8)));
    }
    return out;
}

/**
 * Satellite: the JSONL cadence cursor is part of the checkpoint — a
 * killed + resumed fleet's stats files concatenate to exactly the
 * uninterrupted run's emission schedule (no re-emitted line, no
 * skipped interval across the kill).
 */
TEST(JsonlCadence, ResumePreservesStatsCursor)
{
    const std::string dir = testing::TempDir();
    const std::string full = dir + "/tf_stats_full.jsonl";
    const std::string killed_file = dir + "/tf_stats_killed.jsonl";
    const std::string resumed_file = dir + "/tf_stats_resumed.jsonl";
    const std::string ckpt = dir + "/tf_stats_resume.ckpt";

    // Cadence deliberately off-grid vs the 0.75s epochs so some
    // barriers emit and others do not.
    auto config = [&](const std::string &stats) {
        FleetConfig fc = fleetConfig(2, 6.0, 0.75, 13);
        fc.statsFile = stats;
        fc.statsEverySec = 2.0;
        return fc;
    };

    fleet::FleetOrchestrator uninterrupted(config(full),
                                           campaignOpts(),
                                           fuzzerOpts(), &lib());
    uninterrupted.run();

    {
        FleetConfig fc = config(killed_file);
        fc.checkpointEveryEpochs = 1;
        fc.checkpointPath = ckpt;
        fc.haltAfterEpochs = 4; // kill past the first emission
        fleet::FleetOrchestrator killed(fc, campaignOpts(),
                                        fuzzerOpts(), &lib());
        killed.run();
    }

    std::string error;
    const auto snap = soc::Snapshot::tryLoadFile(ckpt, &error);
    ASSERT_TRUE(snap.has_value()) << error;
    fleet::FleetOrchestrator resumed(config(resumed_file),
                                     campaignOpts(), fuzzerOpts(),
                                     &lib());
    ASSERT_TRUE(resumed.restoreCheckpoint(*snap, &error)) << error;
    resumed.run();

    const auto want = statsCadence(full);
    auto got = statsCadence(killed_file);
    const auto tail = statsCadence(resumed_file);
    got.insert(got.end(), tail.begin(), tail.end());

    ASSERT_FALSE(want.empty());
    ASSERT_FALSE(tail.empty()) << "resume emitted nothing";
    ASSERT_EQ(got.size(), want.size())
        << "resume re-emitted or skipped a stats line";
    for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_DOUBLE_EQ(got[i].first, want[i].first) << i;
        EXPECT_EQ(got[i].second, want[i].second) << i;
    }

    std::remove(full.c_str());
    std::remove(killed_file.c_str());
    std::remove(resumed_file.c_str());
    std::remove(ckpt.c_str());
}

} // namespace
} // namespace turbofuzz
