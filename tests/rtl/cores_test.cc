/** @file Core-netlist construction tests. */

#include <gtest/gtest.h>

#include <set>

#include "rtl/cores.hh"

namespace turbofuzz::rtl
{
namespace
{

TEST(Cores, RocketModuleInventory)
{
    auto top = buildRocketLike();
    for (const char *name :
         {"IFU", "EXU", "CSRFile", "FPU", "MulDiv", "LSU", "PTW"}) {
        EXPECT_NE(top->findModule(name), nullptr) << name;
    }
    EXPECT_EQ(top->name(), "RocketTile");
}

TEST(Cores, Cva6AddsScoreboard)
{
    auto top = buildCva6Like();
    EXPECT_NE(top->findModule("Scoreboard"), nullptr);
    EXPECT_EQ(top->findModule("ROB"), nullptr);
}

TEST(Cores, BoomAddsOutOfOrderStructures)
{
    auto top = buildBoomLike();
    for (const char *name : {"ROB", "IssueQueue", "Rename"})
        EXPECT_NE(top->findModule(name), nullptr) << name;
}

TEST(Cores, BuildCoreDispatch)
{
    EXPECT_EQ(buildCore(core::CoreKind::Rocket)->name(), "RocketTile");
    EXPECT_EQ(buildCore(core::CoreKind::Cva6)->name(), "Cva6Core");
    EXPECT_EQ(buildCore(core::CoreKind::Boom)->name(), "BoomTile");
}

TEST(Cores, EveryUnitHasControlRegisters)
{
    auto top = buildRocketLike();
    top->visit([](const Module &m) {
        if (m.children().empty()) { // leaf units
            EXPECT_FALSE(m.controlRegisters().empty()) << m.name();
            EXPECT_FALSE(m.muxes().empty()) << m.name();
        }
    });
}

TEST(Cores, ControlSetExcludesDatapathRegisters)
{
    auto top = buildRocketLike();
    Module *exu = top->findModule("EXU");
    ASSERT_NE(exu, nullptr);
    const auto ctrl = exu->controlRegisters();
    const std::set<uint32_t> ctrl_set(ctrl.begin(), ctrl.end());
    unsigned datapath_regs = 0;
    for (uint32_t i = 0; i < exu->registers().size(); ++i) {
        if (exu->registers()[i].name.rfind("data", 0) == 0) {
            ++datapath_regs;
            EXPECT_EQ(ctrl_set.count(i), 0u)
                << exu->registers()[i].name;
        }
    }
    EXPECT_GT(datapath_regs, 0u);
}

TEST(Cores, ConstrainedUnitsCarryDomains)
{
    auto top = buildRocketLike();
    for (const char *name : {"FPU", "PTW", "CSRFile"}) {
        Module *m = top->findModule(name);
        ASSERT_NE(m, nullptr);
        bool has_domain = false;
        for (const Register &r : m->registers())
            has_domain |= !r.domain.empty();
        EXPECT_TRUE(has_domain) << name;
    }
}

TEST(Cores, ControlDensitySupportsInstrumentation)
{
    // Each leaf unit's control width must exceed the largest index
    // (15 bits) so the compression path is actually exercised.
    auto top = buildRocketLike();
    top->visit([](const Module &m) {
        if (m.children().empty())
            EXPECT_GE(m.controlBitWidth(), 10u) << m.name();
    });
}

TEST(Cores, DeterministicConstruction)
{
    auto a = buildRocketLike();
    auto b = buildRocketLike();
    // Same structure: module count, register counts, mux counts.
    std::vector<std::string> names_a, names_b;
    size_t regs_a = 0, regs_b = 0, mux_a = 0, mux_b = 0;
    a->visit([&](const Module &m) {
        names_a.push_back(m.name());
        regs_a += m.registers().size();
        mux_a += m.muxes().size();
    });
    b->visit([&](const Module &m) {
        names_b.push_back(m.name());
        regs_b += m.registers().size();
        mux_b += m.muxes().size();
    });
    EXPECT_EQ(names_a, names_b);
    EXPECT_EQ(regs_a, regs_b);
    EXPECT_EQ(mux_a, mux_b);
}

} // namespace
} // namespace turbofuzz::rtl
