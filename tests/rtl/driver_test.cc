/** @file Event-driver tests: roles, FSM sequencing, domains. */

#include <gtest/gtest.h>

#include "isa/encoding.hh"
#include "rtl/driver.hh"

namespace turbofuzz::rtl
{
namespace
{

/** Find the current value of the first register with a role. */
uint64_t
roleValue(Module &m, RegRole role)
{
    uint64_t v = ~uint64_t{0};
    m.visit([&](Module &mod) {
        for (const Register &r : mod.registers())
            if (r.role == role && r.salt == 0 && r.srcShift == 0 &&
                v == ~uint64_t{0})
                v = r.value;
    });
    return v;
}

/** Build a module holding one register per interesting role. */
std::unique_ptr<Module>
probeModule()
{
    auto m = std::make_unique<Module>("probe");
    m->addRegister("opclass", 6, RegRole::OpClass);
    m->addRegister("pc_low", 8, RegRole::PcLow);
    m->addRegister("taken", 1, RegRole::BranchTaken);
    m->addRegister("loop", 3, RegRole::LoopFsm);
    m->addRegister("stride", 3, RegRole::StrideFsm);
    m->addRegister("trapc", 4, RegRole::TrapCause);
    m->addRegister("fpk", 4, RegRole::FpKind);
    m->addRegister("memlow", 6, RegRole::MemAddrLow);
    return m;
}

core::CommitInfo
commitFor(isa::Opcode op, uint64_t pc)
{
    core::CommitInfo ci;
    ci.pc = pc;
    ci.nextPc = pc + 4;
    ci.decodeValid = true;
    ci.op = op;
    ci.desc = &isa::descOf(op);
    return ci;
}

TEST(EventDriver, OpClassAndPcRoles)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    auto ci = commitFor(isa::Opcode::Add, 0x1000);
    drv.onCommit(ci);
    EXPECT_EQ(roleValue(*m, RegRole::OpClass),
              opClassOf(isa::descOf(isa::Opcode::Add)));
    EXPECT_EQ(roleValue(*m, RegRole::PcLow), (0x1000u >> 2) & 0xFF);
}

TEST(EventDriver, LoopFsmNeedsRepeatedBackwardBranches)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    // Three consecutive taken backward branches to the same target
    // walk the loop FSM to state 3.
    for (int i = 0; i < 3; ++i) {
        auto ci = commitFor(isa::Opcode::Bne, 0x2000);
        ci.branchTaken = true;
        ci.nextPc = 0x1F00; // backward, same target
        drv.onCommit(ci);
    }
    EXPECT_EQ(roleValue(*m, RegRole::LoopFsm), 3u);

    // A taken backward branch to a DIFFERENT target resets to 1.
    auto ci = commitFor(isa::Opcode::Bne, 0x2000);
    ci.branchTaken = true;
    ci.nextPc = 0x1E00;
    drv.onCommit(ci);
    EXPECT_EQ(roleValue(*m, RegRole::LoopFsm), 1u);
}

TEST(EventDriver, StrideFsmNeedsConstantStride)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    // Three loads at stride 8: detector reaches 2 (first repeat
    // establishes the stride, subsequent ones count).
    for (int i = 0; i < 4; ++i) {
        auto ci = commitFor(isa::Opcode::Ld, 0x3000);
        ci.memAccess = true;
        ci.memAddr = 0x8000 + 8 * i;
        ci.memSize = 8;
        drv.onCommit(ci);
    }
    EXPECT_GE(roleValue(*m, RegRole::StrideFsm), 2u);

    // Breaking the stride resets the detector.
    auto ci = commitFor(isa::Opcode::Ld, 0x3000);
    ci.memAccess = true;
    ci.memAddr = 0x9999;
    ci.memSize = 8;
    drv.onCommit(ci);
    EXPECT_EQ(roleValue(*m, RegRole::StrideFsm), 0u);
}

TEST(EventDriver, TrapCauseSticky)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    auto trap = commitFor(isa::Opcode::Ecall, 0x4000);
    trap.trapped = true;
    trap.trapCause = 11;
    drv.onCommit(trap);
    EXPECT_EQ(roleValue(*m, RegRole::TrapCause), 11u);

    // A non-trapping commit leaves the recorded cause in place.
    drv.onCommit(commitFor(isa::Opcode::Add, 0x4004));
    EXPECT_EQ(roleValue(*m, RegRole::TrapCause), 11u);
}

TEST(EventDriver, ConstrainedDomainMapping)
{
    auto m = std::make_unique<Module>("probe");
    m->addRegister("fsm", 4, RegRole::IcacheFsm, {1, 2, 4, 8});
    EventDriver drv(m.get());

    // Whatever the role value, the register holds a domain member.
    for (uint64_t pc = 0x1000; pc < 0x40000; pc += 0x3004) {
        auto ci = commitFor(isa::Opcode::Add, pc);
        drv.onCommit(ci);
        const uint64_t v = m->registers()[0].value;
        EXPECT_TRUE(v == 1 || v == 2 || v == 4 || v == 8) << v;
    }
}

TEST(EventDriver, ResetClearsSequentialState)
{
    auto m = probeModule();
    EventDriver drv(m.get());
    for (int i = 0; i < 3; ++i) {
        auto ci = commitFor(isa::Opcode::Bne, 0x2000);
        ci.branchTaken = true;
        ci.nextPc = 0x1F00;
        drv.onCommit(ci);
    }
    drv.reset();
    EXPECT_EQ(roleValue(*m, RegRole::LoopFsm), 0u);
    EXPECT_EQ(roleValue(*m, RegRole::OpClass), 0u);
}

TEST(EventDriver, FpKindEncoding)
{
    EXPECT_EQ(fpKindOf(isa::Opcode::FaddS), 0u);
    EXPECT_EQ(fpKindOf(isa::Opcode::FdivD), 2u);
    EXPECT_EQ(fpKindOf(isa::Opcode::FmaddD), 4u);
    EXPECT_EQ(fpKindOf(isa::Opcode::FclassS), 11u);
    EXPECT_EQ(fpKindOf(isa::Opcode::Add), 15u); // not FP
}

TEST(EventDriver, OpClassDistinguishesKinds)
{
    const unsigned alu = opClassOf(isa::descOf(isa::Opcode::Add));
    const unsigned br = opClassOf(isa::descOf(isa::Opcode::Beq));
    const unsigned ld = opClassOf(isa::descOf(isa::Opcode::Ld));
    const unsigned mul = opClassOf(isa::descOf(isa::Opcode::Mul));
    EXPECT_NE(alu, br);
    EXPECT_NE(br, ld);
    EXPECT_NE(alu, mul);
}

} // namespace
} // namespace turbofuzz::rtl
