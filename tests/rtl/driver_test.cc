/** @file Event-driver tests: roles, FSM sequencing, domains. */

#include <gtest/gtest.h>

#include <vector>

#include "isa/encoding.hh"
#include "rtl/driver.hh"

namespace turbofuzz::rtl
{
namespace
{

/** Find the current value of the first register with a role. */
uint64_t
roleValue(Module &m, RegRole role)
{
    uint64_t v = ~uint64_t{0};
    m.visit([&](Module &mod) {
        for (const Register &r : mod.registers())
            if (r.role == role && r.salt == 0 && r.srcShift == 0 &&
                v == ~uint64_t{0})
                v = r.value;
    });
    return v;
}

/** Build a module holding one register per interesting role. */
std::unique_ptr<Module>
probeModule()
{
    auto m = std::make_unique<Module>("probe");
    m->addRegister("opclass", 6, RegRole::OpClass);
    m->addRegister("pc_low", 8, RegRole::PcLow);
    m->addRegister("taken", 1, RegRole::BranchTaken);
    m->addRegister("loop", 3, RegRole::LoopFsm);
    m->addRegister("stride", 3, RegRole::StrideFsm);
    m->addRegister("trapc", 4, RegRole::TrapCause);
    m->addRegister("fpk", 4, RegRole::FpKind);
    m->addRegister("memlow", 6, RegRole::MemAddrLow);
    return m;
}

core::CommitInfo
commitFor(isa::Opcode op, uint64_t pc)
{
    core::CommitInfo ci;
    ci.pc = pc;
    ci.nextPc = pc + 4;
    ci.decodeValid = true;
    ci.op = op;
    ci.desc = &isa::descOf(op);
    return ci;
}

TEST(EventDriver, OpClassAndPcRoles)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    auto ci = commitFor(isa::Opcode::Add, 0x1000);
    drv.onCommit(ci);
    EXPECT_EQ(roleValue(*m, RegRole::OpClass),
              opClassOf(isa::descOf(isa::Opcode::Add)));
    EXPECT_EQ(roleValue(*m, RegRole::PcLow), (0x1000u >> 2) & 0xFF);
}

TEST(EventDriver, LoopFsmNeedsRepeatedBackwardBranches)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    // Three consecutive taken backward branches to the same target
    // walk the loop FSM to state 3.
    for (int i = 0; i < 3; ++i) {
        auto ci = commitFor(isa::Opcode::Bne, 0x2000);
        ci.branchTaken = true;
        ci.nextPc = 0x1F00; // backward, same target
        drv.onCommit(ci);
    }
    EXPECT_EQ(roleValue(*m, RegRole::LoopFsm), 3u);

    // A taken backward branch to a DIFFERENT target resets to 1.
    auto ci = commitFor(isa::Opcode::Bne, 0x2000);
    ci.branchTaken = true;
    ci.nextPc = 0x1E00;
    drv.onCommit(ci);
    EXPECT_EQ(roleValue(*m, RegRole::LoopFsm), 1u);
}

TEST(EventDriver, StrideFsmNeedsConstantStride)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    // Three loads at stride 8: detector reaches 2 (first repeat
    // establishes the stride, subsequent ones count).
    for (int i = 0; i < 4; ++i) {
        auto ci = commitFor(isa::Opcode::Ld, 0x3000);
        ci.memAccess = true;
        ci.memAddr = 0x8000 + 8 * i;
        ci.memSize = 8;
        drv.onCommit(ci);
    }
    EXPECT_GE(roleValue(*m, RegRole::StrideFsm), 2u);

    // Breaking the stride resets the detector.
    auto ci = commitFor(isa::Opcode::Ld, 0x3000);
    ci.memAccess = true;
    ci.memAddr = 0x9999;
    ci.memSize = 8;
    drv.onCommit(ci);
    EXPECT_EQ(roleValue(*m, RegRole::StrideFsm), 0u);
}

TEST(EventDriver, TrapCauseSticky)
{
    auto m = probeModule();
    EventDriver drv(m.get());

    auto trap = commitFor(isa::Opcode::Ecall, 0x4000);
    trap.trapped = true;
    trap.trapCause = 11;
    drv.onCommit(trap);
    EXPECT_EQ(roleValue(*m, RegRole::TrapCause), 11u);

    // A non-trapping commit leaves the recorded cause in place.
    drv.onCommit(commitFor(isa::Opcode::Add, 0x4004));
    EXPECT_EQ(roleValue(*m, RegRole::TrapCause), 11u);
}

TEST(EventDriver, ConstrainedDomainMapping)
{
    auto m = std::make_unique<Module>("probe");
    m->addRegister("fsm", 4, RegRole::IcacheFsm, {1, 2, 4, 8});
    EventDriver drv(m.get());

    // Whatever the role value, the register holds a domain member.
    for (uint64_t pc = 0x1000; pc < 0x40000; pc += 0x3004) {
        auto ci = commitFor(isa::Opcode::Add, pc);
        drv.onCommit(ci);
        const uint64_t v = m->registers()[0].value;
        EXPECT_TRUE(v == 1 || v == 2 || v == 4 || v == 8) << v;
    }
}

TEST(EventDriver, ResetClearsSequentialState)
{
    auto m = probeModule();
    EventDriver drv(m.get());
    for (int i = 0; i < 3; ++i) {
        auto ci = commitFor(isa::Opcode::Bne, 0x2000);
        ci.branchTaken = true;
        ci.nextPc = 0x1F00;
        drv.onCommit(ci);
    }
    drv.reset();
    EXPECT_EQ(roleValue(*m, RegRole::LoopFsm), 0u);
    EXPECT_EQ(roleValue(*m, RegRole::OpClass), 0u);
}

/**
 * A commit sequence exercising every sequential tracker the driver
 * owns: loops (backward branches), call/return depth, constant-stride
 * and page-miss memory traffic (stride/dcache/PTW/TLB FSMs), icache
 * locality, LR/SC reservation, FP, CSR, mul/div and the occupancy
 * estimators.
 */
std::vector<core::CommitInfo>
sequentialStimulus()
{
    std::vector<core::CommitInfo> seq;
    // Loop detector: taken backward branches to one target.
    for (int i = 0; i < 3; ++i) {
        auto ci = commitFor(isa::Opcode::Bne, 0x2000);
        ci.branchTaken = true;
        ci.nextPc = 0x1F00;
        seq.push_back(ci);
    }
    // Call (rd == ra) then return (jalr rs1 == ra, rd == x0).
    {
        auto call = commitFor(isa::Opcode::Jal, 0x2100);
        call.ops.rd = 1;
        seq.push_back(call);
        auto ret = commitFor(isa::Opcode::Jalr, 0x3000);
        ret.ops.rd = 0;
        ret.ops.rs1 = 1;
        seq.push_back(ret);
    }
    // Strided loads (stride FSM + recent-page window + PTW/TLB).
    for (int i = 0; i < 5; ++i) {
        auto ci = commitFor(isa::Opcode::Ld, 0x3000 + 4 * i);
        ci.memAccess = true;
        ci.memAddr = 0x8000 + 8 * i;
        ci.memSize = 8;
        ci.rdWritten = true;
        ci.rdValue = 0x1234 + i;
        seq.push_back(ci);
    }
    // Page-missing stores walk the PTW/TLB FSMs.
    for (int i = 0; i < 4; ++i) {
        auto ci = commitFor(isa::Opcode::Sd, 0x3100 + 4 * i);
        ci.memAccess = true;
        ci.memWrite = true;
        ci.memAddr = 0x100000ull * (i + 2);
        ci.memSize = 8;
        seq.push_back(ci);
    }
    // LR arms the reservation, SC clears it.
    {
        auto lr = commitFor(isa::Opcode::LrD, 0x3200);
        lr.memAccess = true;
        lr.memAddr = 0x9000;
        lr.memSize = 8;
        seq.push_back(lr);
        auto sc = commitFor(isa::Opcode::ScD, 0x3204);
        sc.memAccess = true;
        sc.memWrite = true;
        sc.memAddr = 0x9000;
        sc.memSize = 8;
        seq.push_back(sc);
    }
    // FP, CSR, mul/div and a trap round out the role set.
    {
        auto fp = commitFor(isa::Opcode::FmulD, 0x3300);
        fp.frdWritten = true;
        fp.frdValue = 0x4000000000000000ull;
        fp.fpClassRs1 = 4;
        fp.fpClassRs2 = 6;
        fp.fflagsAccrued = 1;
        seq.push_back(fp);
        auto csr = commitFor(isa::Opcode::Csrrw, 0x3304);
        csr.ops.csr = 0x305;
        seq.push_back(csr);
        auto mul = commitFor(isa::Opcode::Mul, 0x3308);
        mul.rdWritten = true;
        mul.rdValue = 0x40;
        seq.push_back(mul);
        auto trap = commitFor(isa::Opcode::Ecall, 0x330C);
        trap.trapped = true;
        trap.trapCause = 11;
        trap.nextPc = 0x80010000;
        seq.push_back(trap);
    }
    return seq;
}

/** All register values of the tree, in visit order. */
std::vector<uint64_t>
registerValues(Module &m)
{
    std::vector<uint64_t> vals;
    m.visit([&](Module &mod) {
        for (const Register &r : mod.registers())
            vals.push_back(r.value);
    });
    return vals;
}

/**
 * Regression for EventDriver::reset(): EVERY piece of sequential
 * tracking state (loop/stride/cache/PTW/TLB/occupancy/branch
 * history/reservation/...) must clear, so two identical iterations
 * separated by a reset drive identical register values at every
 * commit.
 */
TEST(EventDriver, ResetMakesIterationsIdentical)
{
    auto m = probeModule();
    // Extend the probe with the remaining sequential roles.
    m->addRegister("bhist", 6, RegRole::BranchHistory);
    m->addRegister("cfdepth", 4, RegRole::CfDepth);
    m->addRegister("dcache", 3, RegRole::DcacheFsm);
    m->addRegister("icache", 2, RegRole::IcacheFsm);
    m->addRegister("ptw", 3, RegRole::PtwFsm);
    m->addRegister("tlb", 2, RegRole::TlbFsm);
    m->addRegister("rob", 5, RegRole::RobOcc);
    m->addRegister("iq", 4, RegRole::IqOcc);
    m->addRegister("res", 1, RegRole::ResState);
    EventDriver drv(m.get());

    const std::vector<core::CommitInfo> seq = sequentialStimulus();

    std::vector<std::vector<uint64_t>> first;
    for (const auto &ci : seq) {
        drv.onCommit(ci);
        first.push_back(registerValues(*m));
    }

    drv.reset();

    for (size_t i = 0; i < seq.size(); ++i) {
        drv.onCommit(seq[i]);
        EXPECT_EQ(registerValues(*m), first[i]) << "commit " << i;
    }
}

/**
 * The incremental batch path (onTrace / onCommitDirty) must leave
 * exactly the register values the per-commit full path computes.
 */
TEST(EventDriver, OnTraceMatchesPerCommitDrive)
{
    const std::vector<core::CommitInfo> seq = sequentialStimulus();

    auto m_full = probeModule();
    EventDriver full(m_full.get());
    for (const auto &ci : seq)
        full.onCommit(ci);

    auto m_batch = probeModule();
    EventDriver batch(m_batch.get());
    batch.onTrace(seq.data(), seq.size());

    EXPECT_EQ(registerValues(*m_batch), registerValues(*m_full));

    // Split sweeps (batch boundaries) must not change the outcome.
    auto m_split = probeModule();
    EventDriver split(m_split.get());
    const size_t half = seq.size() / 2;
    split.onTrace(seq.data(), half);
    split.onTrace(seq.data() + half, seq.size() - half);
    EXPECT_EQ(registerValues(*m_split), registerValues(*m_full));
}

TEST(EventDriver, FpKindEncoding)
{
    EXPECT_EQ(fpKindOf(isa::Opcode::FaddS), 0u);
    EXPECT_EQ(fpKindOf(isa::Opcode::FdivD), 2u);
    EXPECT_EQ(fpKindOf(isa::Opcode::FmaddD), 4u);
    EXPECT_EQ(fpKindOf(isa::Opcode::FclassS), 11u);
    EXPECT_EQ(fpKindOf(isa::Opcode::Add), 15u); // not FP
}

TEST(EventDriver, OpClassDistinguishesKinds)
{
    const unsigned alu = opClassOf(isa::descOf(isa::Opcode::Add));
    const unsigned br = opClassOf(isa::descOf(isa::Opcode::Beq));
    const unsigned ld = opClassOf(isa::descOf(isa::Opcode::Ld));
    const unsigned mul = opClassOf(isa::descOf(isa::Opcode::Mul));
    EXPECT_NE(alu, br);
    EXPECT_NE(br, ld);
    EXPECT_NE(alu, mul);
}

} // namespace
} // namespace turbofuzz::rtl
