/** @file Structural-model and trace-back tests. */

#include <gtest/gtest.h>

#include "rtl/module.hh"

namespace turbofuzz::rtl
{
namespace
{

TEST(Module, RegisterAndWireConstruction)
{
    Module m("unit");
    const uint32_t r0 = m.addRegister("a", 4, RegRole::OpClass);
    const uint32_t r1 = m.addRegister("b", 2, RegRole::RdIdx);
    EXPECT_EQ(r0, 0u);
    EXPECT_EQ(r1, 1u);
    EXPECT_EQ(m.registers().size(), 2u);

    const uint32_t w = m.addWire("w", {r0, r1});
    EXPECT_EQ(m.wires()[w].regDrivers.size(), 2u);
}

TEST(Module, TraceBackSingleLevel)
{
    Module m("unit");
    const uint32_t a = m.addRegister("a", 4, RegRole::OpClass);
    const uint32_t b = m.addRegister("b", 4, RegRole::RdIdx);
    m.addRegister("datapath", 64, RegRole::Datapath);
    const uint32_t wa = m.addWire("wa", {a});
    m.addWire("wb", {b}); // not used by any mux
    m.addMux("mux0", wa);

    const auto ctrl = m.controlRegisters();
    ASSERT_EQ(ctrl.size(), 1u);
    EXPECT_EQ(ctrl[0], a);
}

TEST(Module, TraceBackMultiHop)
{
    Module m("unit");
    const uint32_t a = m.addRegister("a", 4, RegRole::OpClass);
    const uint32_t b = m.addRegister("b", 4, RegRole::RdIdx);
    const uint32_t c = m.addRegister("c", 4, RegRole::Rs1Idx);
    const uint32_t wa = m.addWire("wa", {a});
    const uint32_t wb = m.addWire("wb", {b});
    const uint32_t comb = m.addWire("comb", {c}, {wa, wb});
    m.addMux("mux0", comb);

    const auto ctrl = m.controlRegisters();
    EXPECT_EQ(ctrl.size(), 3u);
}

TEST(Module, TraceBackHandlesWireCycles)
{
    Module m("unit");
    const uint32_t a = m.addRegister("a", 4, RegRole::OpClass);
    const uint32_t w0 = m.addWire("w0", {a});
    const uint32_t w1 = m.addWire("w1", {}, {w0});
    // Create a cycle: w0 also driven by w1 is not possible post-hoc
    // in this API, so build a self-referential chain instead.
    const uint32_t w2 = m.addWire("w2", {}, {w1, w1});
    m.addMux("mux0", w2);
    const auto ctrl = m.controlRegisters();
    EXPECT_EQ(ctrl.size(), 1u);
}

TEST(Module, ControlBitWidth)
{
    Module m("unit");
    const uint32_t a = m.addRegister("a", 6, RegRole::OpClass);
    const uint32_t b = m.addRegister("b", 3, RegRole::RdIdx);
    m.addRegister("free", 64, RegRole::Datapath);
    const uint32_t wa = m.addWire("wa", {a});
    const uint32_t wb = m.addWire("wb", {b});
    m.addMux("m0", wa);
    m.addMux("m1", wb);
    EXPECT_EQ(m.controlBitWidth(), 9u);
}

TEST(Module, HierarchyVisitAndFind)
{
    Module top("top");
    Module *c1 = top.addChild("alpha");
    Module *c2 = top.addChild("beta");
    c1->addChild("gamma");

    int visited = 0;
    top.visit([&](const Module &) { ++visited; });
    EXPECT_EQ(visited, 4);

    EXPECT_EQ(top.findModule("gamma")->name(), "gamma");
    EXPECT_EQ(top.findModule("beta"), c2);
    EXPECT_EQ(top.findModule("missing"), nullptr);
}

TEST(Module, ConstrainedDomainInitialValue)
{
    Module m("unit");
    const uint32_t r =
        m.addRegister("fsm", 4, RegRole::PtwFsm, {1, 2, 4, 8});
    EXPECT_EQ(m.registers()[r].value, 1u);
    EXPECT_EQ(m.registers()[r].domain.size(), 4u);
}

TEST(Module, BadWireDriverPanics)
{
    Module m("unit");
    EXPECT_DEATH(m.addWire("w", {42}), "bad register");
}

TEST(Module, BadMuxSelectPanics)
{
    Module m("unit");
    EXPECT_DEATH(m.addMux("mux", 7), "bad wire");
}

} // namespace
} // namespace turbofuzz::rtl
