/** @file Area-model tests, including the Table III calibration. */

#include <gtest/gtest.h>

#include "soc/area_model.hh"

namespace turbofuzz::soc
{
namespace
{

TEST(AreaModel, TableThreeDutRow)
{
    const Resources dut = rocketDutResources(15);
    EXPECT_EQ(dut.luts, 308739u);
    EXPECT_EQ(dut.brams, 20u);
    EXPECT_EQ(dut.regs, 170400u);
}

TEST(AreaModel, TableThreeFuzzerIpRow)
{
    const Resources ip = fuzzerIpResources(FuzzerAreaConfig{});
    // Paper: 67523 LUTs, 176 BRAMs, 91445 FFs. The analytical model
    // must land within a few percent of the measured implementation.
    EXPECT_NEAR(static_cast<double>(ip.luts), 67523.0, 67523.0 * 0.05);
    EXPECT_NEAR(static_cast<double>(ip.brams), 176.0, 176.0 * 0.08);
    EXPECT_NEAR(static_cast<double>(ip.regs), 91445.0, 91445.0 * 0.05);
}

TEST(AreaModel, TableThreeFrameworkRow)
{
    const Resources fw = turboFuzzResources(FuzzerAreaConfig{});
    EXPECT_NEAR(static_cast<double>(fw.luts), 89394.0, 89394.0 * 0.05);
    EXPECT_NEAR(static_cast<double>(fw.brams), 227.0, 227.0 * 0.08);
    EXPECT_NEAR(static_cast<double>(fw.regs), 139477.0,
                139477.0 * 0.05);
}

TEST(AreaModel, TableThreeIlaRows)
{
    const Resources c1 = ilaResources(3000, 1024);
    const Resources c2 = ilaResources(3000, 65536);
    EXPECT_NEAR(static_cast<double>(c1.luts), 8142.0, 8142.0 * 0.03);
    EXPECT_NEAR(static_cast<double>(c1.brams), 465.0, 465.0 * 0.03);
    EXPECT_NEAR(static_cast<double>(c1.regs), 14294.0, 14294.0 * 0.03);
    EXPECT_NEAR(static_cast<double>(c2.luts), 10078.0, 10078.0 * 0.03);
    EXPECT_NEAR(static_cast<double>(c2.brams), 578.0, 578.0 * 0.03);
    EXPECT_NEAR(static_cast<double>(c2.regs), 17322.0, 17322.0 * 0.03);
}

TEST(AreaModel, IlaUsesMoreBramThanTurboFuzz)
{
    // Paper: ILA uses 2.05x and 2.55x more BRAM than TurboFuzz.
    const Resources fw = turboFuzzResources(FuzzerAreaConfig{});
    const Resources c1 = ilaResources(3000, 1024);
    const Resources c2 = ilaResources(3000, 65536);
    const double r1 =
        static_cast<double>(c1.brams) / static_cast<double>(fw.brams);
    const double r2 =
        static_cast<double>(c2.brams) / static_cast<double>(fw.brams);
    EXPECT_NEAR(r1, 2.05, 0.15);
    EXPECT_NEAR(r2, 2.55, 0.15);
}

TEST(AreaModel, MonotoneInCorpusSize)
{
    FuzzerAreaConfig small;
    small.corpusEntries = 16;
    FuzzerAreaConfig big;
    big.corpusEntries = 256;
    EXPECT_LT(fuzzerIpResources(small).brams,
              fuzzerIpResources(big).brams);
}

TEST(AreaModel, MonotoneInCoverageWidth)
{
    FuzzerAreaConfig cov1;
    cov1.maxStateSizeBits = 13;
    FuzzerAreaConfig cov3;
    cov3.maxStateSizeBits = 15;
    EXPECT_LE(fuzzerIpResources(cov1).brams,
              fuzzerIpResources(cov3).brams);
}

TEST(AreaModel, MonotoneInTraceDepth)
{
    const Resources d1 = ilaResources(3000, 1024);
    const Resources d2 = ilaResources(3000, 4096);
    EXPECT_LT(d1.brams, d2.brams);
    EXPECT_LT(d1.luts, d2.luts);
}

TEST(AreaModel, FmaxDecreasesWithWidth)
{
    const double f13 = fmaxMHz(13);
    const double f14 = fmaxMHz(14);
    const double f15 = fmaxMHz(15);
    EXPECT_GT(f13, f14);
    EXPECT_GT(f14, f15);
    // cov3 is the shipped configuration and must sustain 100 MHz.
    EXPECT_GE(f15, 100.0);
}

TEST(AreaModel, UtilisationPercentages)
{
    const DevicePart part = xczu19eg();
    // Paper reports the DUT at 59.09% LUTs and 2.03% BRAM.
    EXPECT_NEAR(utilPercent(308739, part.luts), 59.09, 0.3);
    EXPECT_NEAR(utilPercent(20, part.brams), 2.03, 0.2);
    EXPECT_NEAR(utilPercent(170400, part.regs), 16.30, 0.3);
}

} // namespace
} // namespace turbofuzz::soc
