/** @file ILA behavioural-model tests. */

#include <gtest/gtest.h>

#include "soc/ila.hh"

namespace turbofuzz::soc
{
namespace
{

TEST(Ila, TraceWindowBounded)
{
    IlaModel ila({"pc", "valid"}, 4);
    for (uint64_t i = 0; i < 10; ++i)
        ila.capture({i, i % 2});
    EXPECT_EQ(ila.trace().size(), 4u);
    // Oldest retained sample is i=6.
    EXPECT_EQ(ila.trace().front()[0], 6u);
    EXPECT_EQ(ila.trace().back()[0], 9u);
}

TEST(Ila, CaptureRequiresMatchingWidth)
{
    IlaModel ila({"a", "b"}, 8);
    EXPECT_DEATH(ila.capture({1}), "probe/value count mismatch");
}

TEST(Ila, ReprobeCostsRecompileAndClearsTrace)
{
    IlaModel ila({"a"}, 8);
    ila.capture({1});
    EXPECT_EQ(ila.recompileCount(), 0u);
    ila.reprobe({"a", "b", "c"});
    EXPECT_EQ(ila.recompileCount(), 1u);
    EXPECT_TRUE(ila.trace().empty());
    EXPECT_EQ(ila.probes().size(), 3u);
}

TEST(Ila, ResourcesScaleWithDepth)
{
    IlaModel shallow({"a", "b"}, 1024);
    IlaModel deep({"a", "b"}, 65536);
    EXPECT_LT(shallow.resources().brams, deep.resources().brams);
}

} // namespace
} // namespace turbofuzz::soc
