/** @file Sparse memory and BRAM model tests. */

#include <gtest/gtest.h>

#include "soc/memory.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::soc
{
namespace
{

TEST(Memory, UntouchedReadsZero)
{
    Memory m;
    EXPECT_EQ(m.read8(0), 0u);
    EXPECT_EQ(m.read64(0x80000000ull), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(Memory, ScalarRoundTrips)
{
    Memory m;
    m.write8(0x1000, 0xAB);
    m.write16(0x1002, 0xCDEF);
    m.write32(0x1004, 0x12345678);
    m.write64(0x1008, 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(m.read8(0x1000), 0xABu);
    EXPECT_EQ(m.read16(0x1002), 0xCDEFu);
    EXPECT_EQ(m.read32(0x1004), 0x12345678u);
    EXPECT_EQ(m.read64(0x1008), 0xDEADBEEFCAFEF00Dull);
}

TEST(Memory, LittleEndianLayout)
{
    Memory m;
    m.write32(0x2000, 0x11223344);
    EXPECT_EQ(m.read8(0x2000), 0x44u);
    EXPECT_EQ(m.read8(0x2003), 0x11u);
}

TEST(Memory, PageStraddlingAccess)
{
    Memory m;
    const uint64_t addr = Memory::pageSize - 4;
    m.write64(addr, 0x0102030405060708ull);
    EXPECT_EQ(m.read64(addr), 0x0102030405060708ull);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(Memory, LoadBlobAndClearRange)
{
    Memory m;
    const uint8_t blob[] = {1, 2, 3, 4, 5};
    m.loadBlob(0x3000, blob, sizeof(blob));
    EXPECT_EQ(m.read8(0x3002), 3u);
    m.clearRange(0x3000, 5);
    EXPECT_EQ(m.read8(0x3002), 0u);
}

TEST(Memory, SparseDistantAddresses)
{
    Memory m;
    m.write8(0x0, 1);
    m.write8(0xFFFFFFFF0000ull, 2);
    EXPECT_EQ(m.read8(0x0), 1u);
    EXPECT_EQ(m.read8(0xFFFFFFFF0000ull), 2u);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(Memory, SnapshotRoundTrip)
{
    Memory m;
    m.write64(0x1000, 0xAABBCCDDEEFF0011ull);
    m.write8(0x999999, 0x77);

    SnapshotWriter w;
    m.saveState(w);

    Memory m2;
    m2.write8(0x5, 0x5); // will be replaced by load
    const auto buf = w.buffer();
    SnapshotReader r(buf);
    m2.loadState(r);
    EXPECT_EQ(m2.read64(0x1000), 0xAABBCCDDEEFF0011ull);
    EXPECT_EQ(m2.read8(0x999999), 0x77u);
    EXPECT_EQ(m2.read8(0x5), 0u);
    EXPECT_EQ(m2.residentPages(), m.residentPages());
}

TEST(Memory, Reset)
{
    Memory m;
    m.write8(0x42, 9);
    m.reset();
    EXPECT_EQ(m.read8(0x42), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(MemoryJournal, UndoRestoresPriorContents)
{
    Memory m;
    m.write64(0x1000, 0x1111111111111111ull);
    m.write32(0x2000, 0x22222222u);
    m.write8(0x3000, 0x33);

    MemWriteJournal j;
    m.setJournal(&j);
    // Overlapping rewrites of existing bytes, fresh bytes, a
    // page-straddling store and repeated writes to one address.
    m.write64(0x1000, 0xAAAAAAAAAAAAAAAAull);
    m.write32(0x1004, 0xBBBBBBBBu);
    m.write16(0x2000, 0xCCCC);
    m.write8(0x3000, 0xDD);
    m.write8(0x3000, 0xEE);
    // Page-straddling store into otherwise untouched pages.
    m.write64(5 * Memory::pageSize - 3, 0x0123456789ABCDEFull);
    m.write64(0x9000, 0x4444444444444444ull);
    m.setJournal(nullptr);
    EXPECT_FALSE(j.empty());

    m.undo(j);
    EXPECT_EQ(m.read64(0x1000), 0x1111111111111111ull);
    EXPECT_EQ(m.read32(0x2000), 0x22222222u);
    EXPECT_EQ(m.read8(0x3000), 0x33u);
    EXPECT_EQ(m.read64(5 * Memory::pageSize - 3), 0u);
    EXPECT_EQ(m.read64(0x9000), 0u);
}

TEST(MemoryJournal, DetachedWritesAreNotJournaled)
{
    Memory m;
    m.write8(0x0, 0); // page resident before the journal attaches
    MemWriteJournal j;
    m.setJournal(&j);
    m.write8(0x10, 1);
    m.setJournal(nullptr);
    m.write8(0x20, 2); // not journaled
    EXPECT_EQ(j.size(), 1u);

    m.undo(j);
    EXPECT_EQ(m.read8(0x10), 0u); // undone
    EXPECT_EQ(m.read8(0x20), 2u); // untouched
}

TEST(MemoryJournal, UndoDropsPagesTheWritesCreated)
{
    Memory m;
    m.write8(0x1000, 0x11); // resident before the journal attaches
    const size_t resident_before = m.residentPages();

    MemWriteJournal j;
    m.setJournal(&j);
    m.write8(0x1001, 0x22);  // existing page: stays after undo
    m.write64(0x8000, 0x99); // fresh page: must vanish on undo
    m.setJournal(nullptr);
    EXPECT_EQ(m.residentPages(), resident_before + 1);

    // Snapshots serialize page residency, so undo must restore it
    // too — not just byte contents (mismatch-snapshot equivalence).
    m.undo(j);
    EXPECT_EQ(m.residentPages(), resident_before);
    EXPECT_EQ(m.read8(0x1000), 0x11u);
    EXPECT_EQ(m.read8(0x1001), 0u);
    EXPECT_EQ(m.read64(0x8000), 0u);
}

TEST(MemoryJournal, CopyDoesNotTransferJournal)
{
    Memory a;
    MemWriteJournal j;
    a.setJournal(&j);
    Memory b = a;
    b.write8(0x10, 7); // b has no journal attached
    EXPECT_TRUE(j.empty());
    a.setJournal(nullptr);
}

TEST(Bram, CapacityEnforced)
{
    Bram b(16);
    EXPECT_EQ(b.append({1, 2, 3, 4, 5, 6, 7, 8}), 0u);
    EXPECT_EQ(b.append({9, 10, 11, 12, 13, 14, 15, 16}), 8u);
    EXPECT_EQ(b.append({17}), SIZE_MAX);
    EXPECT_EQ(b.used(), 16u);
    EXPECT_EQ(b.capacity(), 16u);
}

TEST(Bram, ReadBack)
{
    Bram b(64);
    const std::vector<uint8_t> rec = {5, 6, 7};
    const size_t off = b.append(rec);
    EXPECT_EQ(b.read(off, 3), rec);
    b.clear();
    EXPECT_EQ(b.used(), 0u);
}

} // namespace
} // namespace turbofuzz::soc
