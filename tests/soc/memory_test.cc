/** @file Sparse memory and BRAM model tests. */

#include <gtest/gtest.h>

#include "soc/memory.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::soc
{
namespace
{

TEST(Memory, UntouchedReadsZero)
{
    Memory m;
    EXPECT_EQ(m.read8(0), 0u);
    EXPECT_EQ(m.read64(0x80000000ull), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(Memory, ScalarRoundTrips)
{
    Memory m;
    m.write8(0x1000, 0xAB);
    m.write16(0x1002, 0xCDEF);
    m.write32(0x1004, 0x12345678);
    m.write64(0x1008, 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(m.read8(0x1000), 0xABu);
    EXPECT_EQ(m.read16(0x1002), 0xCDEFu);
    EXPECT_EQ(m.read32(0x1004), 0x12345678u);
    EXPECT_EQ(m.read64(0x1008), 0xDEADBEEFCAFEF00Dull);
}

TEST(Memory, LittleEndianLayout)
{
    Memory m;
    m.write32(0x2000, 0x11223344);
    EXPECT_EQ(m.read8(0x2000), 0x44u);
    EXPECT_EQ(m.read8(0x2003), 0x11u);
}

TEST(Memory, PageStraddlingAccess)
{
    Memory m;
    const uint64_t addr = Memory::pageSize - 4;
    m.write64(addr, 0x0102030405060708ull);
    EXPECT_EQ(m.read64(addr), 0x0102030405060708ull);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(Memory, LoadBlobAndClearRange)
{
    Memory m;
    const uint8_t blob[] = {1, 2, 3, 4, 5};
    m.loadBlob(0x3000, blob, sizeof(blob));
    EXPECT_EQ(m.read8(0x3002), 3u);
    m.clearRange(0x3000, 5);
    EXPECT_EQ(m.read8(0x3002), 0u);
}

TEST(Memory, SparseDistantAddresses)
{
    Memory m;
    m.write8(0x0, 1);
    m.write8(0xFFFFFFFF0000ull, 2);
    EXPECT_EQ(m.read8(0x0), 1u);
    EXPECT_EQ(m.read8(0xFFFFFFFF0000ull), 2u);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(Memory, SnapshotRoundTrip)
{
    Memory m;
    m.write64(0x1000, 0xAABBCCDDEEFF0011ull);
    m.write8(0x999999, 0x77);

    SnapshotWriter w;
    m.saveState(w);

    Memory m2;
    m2.write8(0x5, 0x5); // will be replaced by load
    const auto buf = w.buffer();
    SnapshotReader r(buf);
    m2.loadState(r);
    EXPECT_EQ(m2.read64(0x1000), 0xAABBCCDDEEFF0011ull);
    EXPECT_EQ(m2.read8(0x999999), 0x77u);
    EXPECT_EQ(m2.read8(0x5), 0u);
    EXPECT_EQ(m2.residentPages(), m.residentPages());
}

TEST(Memory, Reset)
{
    Memory m;
    m.write8(0x42, 9);
    m.reset();
    EXPECT_EQ(m.read8(0x42), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(Bram, CapacityEnforced)
{
    Bram b(16);
    EXPECT_EQ(b.append({1, 2, 3, 4, 5, 6, 7, 8}), 0u);
    EXPECT_EQ(b.append({9, 10, 11, 12, 13, 14, 15, 16}), 8u);
    EXPECT_EQ(b.append({17}), SIZE_MAX);
    EXPECT_EQ(b.used(), 16u);
    EXPECT_EQ(b.capacity(), 16u);
}

TEST(Bram, ReadBack)
{
    Bram b(64);
    const std::vector<uint8_t> rec = {5, 6, 7};
    const size_t off = b.append(rec);
    EXPECT_EQ(b.read(off, 3), rec);
    b.clear();
    EXPECT_EQ(b.used(), 0u);
}

} // namespace
} // namespace turbofuzz::soc
