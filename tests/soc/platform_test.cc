/** @file Timing-model tests, including the Table I calibration. */

#include <gtest/gtest.h>

#include "common/sim_clock.hh"
#include "soc/platform.hh"

namespace turbofuzz::soc
{
namespace
{

TEST(Platform, ChargesAdvanceClock)
{
    SimClock clk;
    Platform p(turboFuzzProfile(), &clk);
    p.chargeStartup();
    EXPECT_GT(clk.seconds(), 0.0);
    const double after_startup = clk.seconds();
    p.chargeIteration(4000, 4122);
    EXPECT_GT(clk.seconds(), after_startup);
}

TEST(Platform, ExecutionCostLinearInInstructions)
{
    SimClock clk;
    Platform p(benchmarkFpgaProfile(), &clk);
    p.chargeExecution(1000);
    const double t1 = clk.seconds();
    p.chargeExecution(2000);
    EXPECT_NEAR(clk.seconds() - t1, 2.0 * t1, 1e-12);
}

/**
 * Table I reproduction at model level: iteration rate and executed
 * instructions per second for each fuzzing configuration.
 */
TEST(Platform, TableOneTurboFuzzRates)
{
    const TimingProfile p = turboFuzzProfile();
    // 4000 generated, ~4122 executed (prevalence 0.97 + handlers).
    const double iter_sec = p.iterationSec(4000, 4122);
    const double hz = 1.0 / iter_sec;
    const double instr_per_sec = 4122.0 * hz;
    EXPECT_NEAR(hz, 75.12, 2.0);
    EXPECT_NEAR(instr_per_sec, 309676.0, 10000.0);
}

TEST(Platform, TableOneDifuzzRtlFpgaRates)
{
    const TimingProfile p = difuzzRtlFpgaProfile();
    // DifuzzRTL executes ~19.3% of what it generates: 912 -> 176.
    const double iter_sec = p.iterationSec(912, 176);
    const double hz = 1.0 / iter_sec;
    EXPECT_NEAR(hz, 4.13, 0.25);
    EXPECT_NEAR(176.0 * hz, 728.0, 50.0);
}

TEST(Platform, TableOneCascadeRates)
{
    const TimingProfile p = cascadeProfile();
    // Cascade programs execute nearly everything they emit (~194).
    const double iter_sec = p.iterationSec(209, 194);
    const double hz = 1.0 / iter_sec;
    EXPECT_NEAR(hz, 12.80, 0.8);
    EXPECT_NEAR(194.0 * hz, 2489.0, 160.0);
}

TEST(Platform, RelativeOrderingIsStable)
{
    // Table I's throughput ordering (executed instructions per
    // second) must hold at each fuzzer's characteristic iteration
    // shape, and TurboFuzz must dominate both at any common shape.
    const TimingProfile tf = turboFuzzProfile();
    const TimingProfile dr = difuzzRtlFpgaProfile();
    const TimingProfile ca = cascadeProfile();

    const double ips_tf = 4122.0 / tf.iterationSec(4000, 4122);
    const double ips_ca = 194.0 / ca.iterationSec(209, 194);
    const double ips_dr = 176.0 / dr.iterationSec(912, 176);
    EXPECT_GT(ips_tf, ips_ca);
    EXPECT_GT(ips_ca, ips_dr);

    for (uint64_t n : {100u, 1000u, 4000u}) {
        EXPECT_LT(tf.iterationSec(n, n), ca.iterationSec(n, n)) << n;
        EXPECT_LT(tf.iterationSec(n, n), dr.iterationSec(n, n / 5))
            << n;
    }
}

TEST(Platform, SoftwareSimSlowerThanFabric)
{
    const TimingProfile sw = difuzzRtlSwProfile();
    const TimingProfile hw = difuzzRtlFpgaProfile();
    EXPECT_GT(sw.execPerInstrSec, hw.execPerInstrSec * 100);
}

} // namespace
} // namespace turbofuzz::soc
