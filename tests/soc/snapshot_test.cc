/** @file Snapshot serialization tests. */

#include <gtest/gtest.h>

#include <cstdio>

#include "soc/snapshot.hh"

namespace turbofuzz::soc
{
namespace
{

TEST(SnapshotWriter, ScalarRoundTrip)
{
    SnapshotWriter w;
    w.putU8(0x12);
    w.putU16(0x3456);
    w.putU32(0x789ABCDE);
    w.putU64(0x0123456789ABCDEFull);
    w.putString("turbofuzz");

    const auto buf = w.buffer();
    SnapshotReader r(buf);
    EXPECT_EQ(r.getU8(), 0x12u);
    EXPECT_EQ(r.getU16(), 0x3456u);
    EXPECT_EQ(r.getU32(), 0x789ABCDEu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getString(), "turbofuzz");
    EXPECT_TRUE(r.exhausted());
}

TEST(Snapshot, SectionsAndMetadata)
{
    Snapshot s;
    s.setSection("dut", {1, 2, 3});
    s.setSection("ref", {4, 5});
    s.setTrigger("fflags mismatch at pc 0x80000010");
    s.setCaptureTime(12.5);

    EXPECT_TRUE(s.hasSection("dut"));
    EXPECT_FALSE(s.hasSection("coverage"));
    EXPECT_EQ(s.section("ref").size(), 2u);
    EXPECT_EQ(s.sectionCount(), 2u);
}

TEST(Snapshot, SerializeDeserialize)
{
    Snapshot s;
    s.setSection("mem", std::vector<uint8_t>(1000, 0xAB));
    s.setSection("arch", {9, 8, 7});
    s.setTrigger("rd value mismatch");
    s.setCaptureTime(3.25);

    const auto image = s.serialize();
    const Snapshot s2 = Snapshot::deserialize(image);
    EXPECT_EQ(s2.trigger(), "rd value mismatch");
    EXPECT_NEAR(s2.captureTime(), 3.25, 1e-9);
    EXPECT_EQ(s2.section("mem"), s.section("mem"));
    EXPECT_EQ(s2.section("arch"), s.section("arch"));
}

TEST(Snapshot, BadMagicRejected)
{
    std::vector<uint8_t> garbage = {0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EXIT(Snapshot::deserialize(garbage),
                testing::ExitedWithCode(1), "bad snapshot magic");
}

TEST(Snapshot, FileRoundTrip)
{
    Snapshot s;
    s.setSection("x", {42});
    s.setTrigger("test");
    const std::string path = testing::TempDir() + "/tf_snapshot_test.bin";
    s.saveFile(path);
    const Snapshot s2 = Snapshot::loadFile(path);
    EXPECT_EQ(s2.section("x"), std::vector<uint8_t>{42});
    std::remove(path.c_str());
}

TEST(Snapshot, MissingSectionIsFatal)
{
    Snapshot s;
    EXPECT_EXIT((void)s.section("nope"), testing::ExitedWithCode(1),
                "no section");
}

} // namespace
} // namespace turbofuzz::soc
