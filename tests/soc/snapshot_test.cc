/** @file Snapshot serialization tests. */

#include <gtest/gtest.h>

#include <cstdio>

#include "soc/snapshot.hh"

namespace turbofuzz::soc
{
namespace
{

TEST(SnapshotWriter, ScalarRoundTrip)
{
    SnapshotWriter w;
    w.putU8(0x12);
    w.putU16(0x3456);
    w.putU32(0x789ABCDE);
    w.putU64(0x0123456789ABCDEFull);
    w.putString("turbofuzz");

    const auto buf = w.buffer();
    SnapshotReader r(buf);
    EXPECT_EQ(r.getU8(), 0x12u);
    EXPECT_EQ(r.getU16(), 0x3456u);
    EXPECT_EQ(r.getU32(), 0x789ABCDEu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getString(), "turbofuzz");
    EXPECT_TRUE(r.exhausted());
}

TEST(Snapshot, SectionsAndMetadata)
{
    Snapshot s;
    s.setSection("dut", {1, 2, 3});
    s.setSection("ref", {4, 5});
    s.setTrigger("fflags mismatch at pc 0x80000010");
    s.setCaptureTime(12.5);

    EXPECT_TRUE(s.hasSection("dut"));
    EXPECT_FALSE(s.hasSection("coverage"));
    EXPECT_EQ(s.section("ref").size(), 2u);
    EXPECT_EQ(s.sectionCount(), 2u);
}

TEST(Snapshot, SerializeDeserialize)
{
    Snapshot s;
    s.setSection("mem", std::vector<uint8_t>(1000, 0xAB));
    s.setSection("arch", {9, 8, 7});
    s.setTrigger("rd value mismatch");
    s.setCaptureTime(3.25);

    const auto image = s.serialize();
    const Snapshot s2 = Snapshot::deserialize(image);
    EXPECT_EQ(s2.trigger(), "rd value mismatch");
    EXPECT_NEAR(s2.captureTime(), 3.25, 1e-9);
    EXPECT_EQ(s2.section("mem"), s.section("mem"));
    EXPECT_EQ(s2.section("arch"), s.section("arch"));
}

TEST(Snapshot, BadMagicRejected)
{
    std::vector<uint8_t> garbage = {0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EXIT(Snapshot::deserialize(garbage),
                testing::ExitedWithCode(1), "bad snapshot magic");
}

TEST(Snapshot, FileRoundTrip)
{
    Snapshot s;
    s.setSection("x", {42});
    s.setTrigger("test");
    const std::string path = testing::TempDir() + "/tf_snapshot_test.bin";
    s.saveFile(path);
    const Snapshot s2 = Snapshot::loadFile(path);
    EXPECT_EQ(s2.section("x"), std::vector<uint8_t>{42});
    std::remove(path.c_str());
}

TEST(Snapshot, MissingSectionIsFatal)
{
    Snapshot s;
    EXPECT_EXIT((void)s.section("nope"), testing::ExitedWithCode(1),
                "no section");
}

// ---------------------------------------------------------------------
// Malformed-input suite: snapshot images come from disk (checkpoint
// files, archived captures), so every length field must be validated
// against the remaining buffer BEFORE any allocation, and parse
// failures must surface as recoverable errors — never as a crash or a
// multi-gigabyte allocation.
// ---------------------------------------------------------------------

/** A healthy serialized snapshot to corrupt. */
std::vector<uint8_t>
sampleImage()
{
    Snapshot s;
    s.setSection("arch", {9, 8, 7, 6, 5});
    s.setSection("mem", std::vector<uint8_t>(64, 0xCD));
    s.setTrigger("sample");
    s.setCaptureTime(1.5);
    return s.serialize();
}

TEST(SnapshotHardening, ReaderGetBytesRejectsOverflowingSize)
{
    // The historical bounds check `cursor + size <= source.size()`
    // wrapped for sizes near SIZE_MAX and accepted the read; the
    // rewritten `size <= remaining()` must reject it.
    std::vector<uint8_t> buf = {1, 2, 3, 4};
    SnapshotReader r(buf);
    r.getU8(); // cursor != 0 so the historical form could wrap
    uint8_t out[4];
    EXPECT_THROW(r.getBytes(out, SIZE_MAX - 2), SnapshotFormatError);
}

TEST(SnapshotHardening, GetStringRejectsOversizedLengthBeforeAlloc)
{
    // Length field 0xFFFFFFFF with only a handful of payload bytes:
    // must throw instead of attempting a 4 GiB allocation.
    SnapshotWriter w;
    w.putU32(0xFFFFFFFFu);
    w.putU8(0xAA);
    const auto buf = w.buffer();
    SnapshotReader r(buf);
    EXPECT_THROW(r.getString(), SnapshotFormatError);
}

TEST(SnapshotHardening, TryDeserializeTruncatedHeader)
{
    std::string error;
    EXPECT_FALSE(Snapshot::tryDeserialize({0x50, 0x53}, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(SnapshotHardening, TryDeserializeBadMagic)
{
    std::string error;
    EXPECT_FALSE(
        Snapshot::tryDeserialize({0, 1, 2, 3, 4, 5, 6, 7}, &error));
    EXPECT_NE(error.find("bad snapshot magic"), std::string::npos);
}

TEST(SnapshotHardening, TryDeserializeBadVersion)
{
    auto image = sampleImage();
    image[4] = 0x7F; // version field follows the 4-byte magic
    std::string error;
    EXPECT_FALSE(Snapshot::tryDeserialize(image, &error));
    EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(SnapshotHardening, TryDeserializeTruncatedSection)
{
    auto image = sampleImage();
    image.resize(image.size() - 10); // cut into the last section
    std::string error;
    EXPECT_FALSE(Snapshot::tryDeserialize(image, &error));
    EXPECT_FALSE(error.empty());
}

TEST(SnapshotHardening, TryDeserializeTrailingBytes)
{
    auto image = sampleImage();
    image.push_back(0x00);
    std::string error;
    EXPECT_FALSE(Snapshot::tryDeserialize(image, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(SnapshotHardening, TryDeserializeOversizedSectionCount)
{
    SnapshotWriter w;
    w.putU32(0x54465350);
    w.putU16(Snapshot::formatVersion);
    w.putString("t");
    w.putU64(0);
    w.putU32(0xFFFFFFFFu); // section count that cannot fit
    const auto image = w.takeBuffer();
    std::string error;
    EXPECT_FALSE(Snapshot::tryDeserialize(image, &error));
    EXPECT_NE(error.find("section count"), std::string::npos);
}

TEST(SnapshotHardening, TryDeserializeOversizedSectionSize)
{
    SnapshotWriter w;
    w.putU32(0x54465350);
    w.putU16(Snapshot::formatVersion);
    w.putString("t");
    w.putU64(0);
    w.putU32(1);
    w.putString("mem");
    w.putU32(0xFFFFFFF0u); // section size far past the buffer end
    w.putU8(0xEE);
    const auto image = w.takeBuffer();
    std::string error;
    EXPECT_FALSE(Snapshot::tryDeserialize(image, &error));
    EXPECT_NE(error.find("section size"), std::string::npos);
}

TEST(SnapshotHardening, RoundTripProperty)
{
    // Pseudo-random snapshots must round-trip bit-exactly through
    // serialize -> tryDeserialize.
    uint64_t state = 0x1234;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    for (int round = 0; round < 20; ++round) {
        Snapshot s;
        const unsigned nsections = 1 + next() % 5;
        for (unsigned i = 0; i < nsections; ++i) {
            std::vector<uint8_t> data(next() % 300);
            for (auto &b : data)
                b = static_cast<uint8_t>(next());
            s.setSection("sec" + std::to_string(next() % 8),
                         std::move(data));
        }
        s.setTrigger("round " + std::to_string(round));
        s.setCaptureTime(static_cast<double>(next() % 1000) / 8.0);

        const auto image = s.serialize();
        std::string error;
        const auto back = Snapshot::tryDeserialize(image, &error);
        ASSERT_TRUE(back.has_value()) << error;
        EXPECT_EQ(back->trigger(), s.trigger());
        EXPECT_EQ(back->sectionCount(), s.sectionCount());
        EXPECT_EQ(back->serialize(), image);
    }
}

TEST(SnapshotHardening, TryLoadFileMissingAndCorrupt)
{
    std::string error;
    EXPECT_FALSE(
        Snapshot::tryLoadFile("/nonexistent/tf.ckpt", &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);

    const std::string path =
        testing::TempDir() + "/tf_corrupt_snapshot.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const uint8_t junk[] = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_FALSE(Snapshot::tryLoadFile(path, &error));
    EXPECT_NE(error.find("bad snapshot magic"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace turbofuzz::soc
