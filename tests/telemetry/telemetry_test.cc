/**
 * @file
 * Telemetry subsystem tests: histogram bucketing, snapshot merge
 * discipline, registry checkpointing, trace JSON shape, JSONL
 * emission, and the observer contract — telemetry on vs off must not
 * change campaign or fleet results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fleet_config.hh"
#include "common/stats.hh"
#include "fleet/orchestrator.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"
#include "soc/snapshot.hh"
#include "telemetry/metrics.hh"
#include "telemetry/reporter.hh"
#include "telemetry/trace.hh"

namespace turbofuzz::telemetry
{
namespace
{

// --- Histogram bucketing ---------------------------------------------

TEST(Histogram, BucketBoundaries)
{
    // bucket 0 = {0}; bucket i >= 1 covers [2^(i-1), 2^i - 1].
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), 64u);

    EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
    EXPECT_EQ(Histogram::bucketLowerBound(4), 8u);
    EXPECT_EQ(Histogram::bucketLowerBound(64),
              uint64_t{1} << 63);

    // Every bucket's lower bound maps back into that bucket.
    for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
        EXPECT_EQ(Histogram::bucketIndex(
                      Histogram::bucketLowerBound(i)),
                  i);
    }
}

TEST(Histogram, RecordTracksStatistics)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u); // empty-histogram convention
    h.record(0);
    h.record(5);
    h.record(5);
    h.record(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1010u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(0), 1u);                       // the 0
    EXPECT_EQ(h.bucket(Histogram::bucketIndex(5)), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 1010.0 / 4.0);
}

// --- Snapshot merge --------------------------------------------------

MetricsSnapshot
snapshotWith(uint64_t counter_v, int64_t gauge_v,
             std::vector<uint64_t> hist_samples)
{
    MetricRegistry reg;
    reg.counter("c")->add(counter_v);
    reg.gauge("g")->set(gauge_v);
    Histogram *h = reg.histogram("h");
    for (uint64_t v : hist_samples)
        h->record(v);
    return reg.snapshot();
}

TEST(MetricsSnapshot, MergeIsAssociative)
{
    const MetricsSnapshot a = snapshotWith(1, 10, {1, 2});
    const MetricsSnapshot b = snapshotWith(2, 20, {0, 1 << 10});
    const MetricsSnapshot c = snapshotWith(3, 30, {7});

    // (a + b) + c
    MetricsSnapshot left = a;
    ASSERT_TRUE(left.merge(b));
    ASSERT_TRUE(left.merge(c));

    // a + (b + c)
    MetricsSnapshot bc = b;
    ASSERT_TRUE(bc.merge(c));
    MetricsSnapshot right = a;
    ASSERT_TRUE(right.merge(bc));

    EXPECT_EQ(left.entries(), right.entries());
    EXPECT_EQ(left.counterValue("c"), 6u);
    const MetricValue *h = left.find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->histogram.count, 5u);
    EXPECT_EQ(h->histogram.min, 0u);
    EXPECT_EQ(h->histogram.max, uint64_t{1} << 10);
}

TEST(MetricsSnapshot, MergeRejectsKindMismatchWithoutMutation)
{
    MetricRegistry a;
    a.counter("x")->add(5);
    a.counter("other")->add(1);
    MetricRegistry b;
    b.gauge("x")->set(9);
    b.counter("fresh")->add(2);

    MetricsSnapshot mine = a.snapshot();
    const MetricsSnapshot before = mine;
    std::string error;
    EXPECT_FALSE(mine.merge(b.snapshot(), &error));
    EXPECT_NE(error.find("kind mismatch"), std::string::npos)
        << error;
    // Validate-first: the failed merge must not have added "fresh"
    // or touched "other".
    EXPECT_EQ(mine.entries(), before.entries());
}

TEST(MetricsSnapshot, ToJsonShape)
{
    const MetricsSnapshot s = snapshotWith(7, -3, {0, 4});
    const std::string json = s.toJson();
    EXPECT_EQ(json.find("{"), 0u);
    EXPECT_NE(json.find("\"c\":7"), std::string::npos) << json;
    EXPECT_NE(json.find("\"g\":-3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
    // Bucket keys are lower bounds: 0 and 4.
    EXPECT_NE(json.find("\"buckets\":{\"0\":1,\"4\":1}"),
              std::string::npos)
        << json;
}

// --- Registry checkpointing ------------------------------------------

TEST(MetricRegistry, SaveLoadRoundTrip)
{
    MetricRegistry donor;
    donor.counter("a.count")->add(42);
    donor.gauge("a.level")->set(-7);
    Histogram *h = donor.histogram("a.hist");
    h->record(3);
    h->record(300);

    soc::SnapshotWriter w;
    donor.saveState(w);
    const auto image = w.takeBuffer();

    MetricRegistry fresh;
    fresh.counter("a.count");
    fresh.gauge("a.level");
    fresh.histogram("a.hist");
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(fresh.loadState(r, &error)) << error;
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(fresh.snapshot().entries(),
              donor.snapshot().entries());
}

TEST(MetricRegistry, LoadRejectsCensusMismatch)
{
    MetricRegistry donor;
    donor.counter("a")->add(1);
    soc::SnapshotWriter w;
    donor.saveState(w);
    const auto image = w.takeBuffer();

    // Different instrument count.
    {
        MetricRegistry victim;
        victim.counter("a");
        victim.counter("b");
        soc::SnapshotReader r(image);
        std::string error;
        EXPECT_FALSE(victim.loadState(r, &error));
        EXPECT_NE(error.find("census"), std::string::npos) << error;
    }
    // Same count, unknown name.
    {
        MetricRegistry victim;
        victim.counter("z");
        soc::SnapshotReader r(image);
        std::string error;
        EXPECT_FALSE(victim.loadState(r, &error));
        EXPECT_NE(error.find("unknown instrument"),
                  std::string::npos)
            << error;
    }
    // Same name, different kind — and the failed load must leave
    // pre-call values intact.
    {
        MetricRegistry victim;
        victim.gauge("a")->set(99);
        soc::SnapshotReader r(image);
        std::string error;
        EXPECT_FALSE(victim.loadState(r, &error));
        EXPECT_NE(error.find("kind mismatch"), std::string::npos)
            << error;
        EXPECT_EQ(victim.snapshot().find("a")->gauge, 99);
    }
}

TEST(MetricRegistry, LoadRejectsTruncatedImage)
{
    MetricRegistry donor;
    donor.counter("a")->add(123);
    soc::SnapshotWriter w;
    donor.saveState(w);
    auto image = w.takeBuffer();
    image.resize(image.size() - 1);

    MetricRegistry victim;
    victim.counter("a")->add(7);
    soc::SnapshotReader r(image);
    std::string error;
    EXPECT_FALSE(victim.loadState(r, &error));
    EXPECT_EQ(victim.snapshot().counterValue("a"), 7u);
}

// --- Trace recorder --------------------------------------------------

TEST(TraceRecorder, EmitsWellFormedChromeTrace)
{
    TraceRecorder rec;
    {
        TraceSpan outer(&rec, "outer");
        TraceSpan inner(&rec, "inner");
    }
    rec.instant("marker");
    EXPECT_EQ(rec.eventCount(), 3u);

    const std::string json = rec.toJson();
    EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\","
                        "\"traceEvents\":["),
              0u)
        << json;
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Complete events carry a duration; every event carries pid/tid.
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    // Spans destruct inner-first: the inner span is recorded before
    // the outer one.
    EXPECT_LT(json.find("\"name\":\"inner\""),
              json.find("\"name\":\"outer\""));
}

TEST(TraceRecorder, NullRecorderSpansAreNoOps)
{
    // The default campaign path: no recorder bound.
    TraceSpan span(nullptr, "unused");
    ScopedStage stage(nullptr, nullptr, "unused");
    SUCCEED();
}

TEST(TraceRecorder, SamplingSelectsEveryNth)
{
    TraceRecorder rec(4);
    int sampled = 0;
    for (uint64_t i = 0; i < 16; ++i)
        sampled += rec.sampleIteration(i);
    EXPECT_EQ(sampled, 4);
    // sample_every = 0 is normalized to 1 (trace everything).
    TraceRecorder all(0);
    EXPECT_EQ(all.sampleEveryN(), 1u);
}

TEST(ScopedStage, FeedsCounterAndRecorder)
{
    MetricRegistry reg;
    Counter *ns = reg.counter("stage_ns");
    TraceRecorder rec;
    {
        ScopedStage stage(&rec, ns, "stage");
    }
    EXPECT_EQ(rec.eventCount(), 1u);
    // Wall time passed between constructor and destructor clock
    // reads; the counter saw the same interval the span did.
    EXPECT_GT(ns->value(), 0u);
}

// --- JSONL reporter --------------------------------------------------

TEST(JsonlReporter, EmitsSchemaTaggedLines)
{
    const std::string path =
        ::testing::TempDir() + "telemetry_reporter_test.jsonl";
    JsonlReporter rep;
    ASSERT_TRUE(rep.open(path));
    MetricRegistry reg;
    reg.counter("c")->add(11);
    rep.emit(1.5, 0, reg.snapshot());
    reg.counter("c")->add(1);
    rep.emit(3.0, 1, reg.snapshot());
    rep.close();

    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.find("{\"schema\":\"turbofuzz.metrics.v1\","
                        "\"t_sim\":1.500000,"),
              0u)
        << line;
    EXPECT_NE(line.find("\"epoch\":0"), std::string::npos);
    EXPECT_NE(line.find("\"metrics\":{\"c\":11}"),
              std::string::npos)
        << line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"epoch\":1"), std::string::npos);
    EXPECT_NE(line.find("\"c\":12"), std::string::npos);
    EXPECT_FALSE(std::getline(in, line));
    std::remove(path.c_str());
}

// --- ThroughputMeter on the telemetry clock --------------------------

TEST(ThroughputMeter, StopFreezesElapsedTime)
{
    ThroughputMeter meter;
    meter.restart();
    meter.addCommits(1000);
    meter.addIterations(10);
    meter.stop();
    const double frozen = meter.elapsedSec();
    EXPECT_GE(frozen, 0.0);
    // After stop(), elapsed time no longer advances: rates derived
    // from it stay mutually consistent.
    EXPECT_DOUBLE_EQ(meter.elapsedSec(), frozen);
    EXPECT_EQ(meter.commits(), 1000u);
    EXPECT_EQ(meter.iterations(), 10u);
    if (frozen > 0.0) {
        EXPECT_DOUBLE_EQ(meter.commitsPerSec(), 1000.0 / frozen);
        EXPECT_DOUBLE_EQ(meter.itersPerSec(), 10.0 / frozen);
    }
}

// --- Campaign integration --------------------------------------------

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = harness::makeDefaultLibrary();
    return l;
}

std::unique_ptr<fuzzer::TurboFuzzGenerator>
makeGen(uint64_t seed)
{
    fuzzer::FuzzerOptions o;
    o.seed = seed;
    o.instrsPerIteration = 1000;
    return std::make_unique<fuzzer::TurboFuzzGenerator>(o, &lib());
}

harness::CampaignOptions
campaignOpts()
{
    harness::CampaignOptions o;
    o.timing = soc::turboFuzzProfile();
    return o;
}

TEST(CampaignTelemetry, CountersMirrorCampaignCounters)
{
    harness::Campaign c(campaignOpts(), makeGen(3));
    for (int i = 0; i < 20; ++i)
        c.runIteration();

    const MetricsSnapshot snap = c.metrics().snapshot();
    EXPECT_EQ(snap.counterValue("campaign.iterations"),
              c.iterations());
    EXPECT_EQ(snap.counterValue("campaign.commits"),
              c.executedInstructions());
    EXPECT_EQ(snap.counterValue("campaign.mismatches"),
              c.mismatchedIterations());
    const MetricValue *commits =
        snap.find("campaign.iteration.commits");
    ASSERT_NE(commits, nullptr);
    EXPECT_EQ(commits->histogram.count, c.iterations());
    // Corpus instruments are bound through the generator.
    const MetricValue *corpus_size = snap.find("corpus.size");
    ASSERT_NE(corpus_size, nullptr);
    EXPECT_GT(corpus_size->gauge, 0);
}

TEST(CampaignTelemetry, TracingDoesNotChangeResults)
{
    // Telemetry observes, never steers: a traced + stage-timed
    // campaign must produce bit-identical results to a plain one.
    harness::Campaign plain(campaignOpts(), makeGen(9));
    for (int i = 0; i < 30; ++i)
        plain.runIteration();

    TraceRecorder rec(3); // sample a subset, exercise both paths
    harness::CampaignOptions topts = campaignOpts();
    topts.trace = &rec;
    topts.stageTiming = true;
    harness::Campaign traced(topts, makeGen(9));
    for (int i = 0; i < 30; ++i)
        traced.runIteration();

    EXPECT_EQ(traced.executedInstructions(),
              plain.executedInstructions());
    EXPECT_EQ(traced.generatedInstructions(),
              plain.generatedInstructions());
    EXPECT_EQ(traced.coverageMap().totalCovered(),
              plain.coverageMap().totalCovered());
    EXPECT_DOUBLE_EQ(traced.nowSec(), plain.nowSec());
    EXPECT_GT(rec.eventCount(), 0u);

    // Stage counters actually accumulated engine time.
    const MetricsSnapshot snap = traced.metrics().snapshot();
    EXPECT_GT(snap.counterValue("engine.batch.dut_ns"), 0u);
    EXPECT_GT(snap.counterValue("engine.batch.ref_ns"), 0u);
    EXPECT_GT(snap.counterValue("engine.batch.sweep_ns"), 0u);
    EXPECT_GT(snap.counterValue("campaign.generate_ns"), 0u);
}

TEST(CampaignTelemetry, MetricsSurviveCheckpointRestore)
{
    const harness::CampaignOptions opts = campaignOpts();
    harness::Campaign donor(opts, makeGen(5));
    for (int i = 0; i < 40; ++i)
        donor.runIteration();

    soc::SnapshotWriter w;
    ASSERT_TRUE(donor.saveState(w));
    const auto image = w.takeBuffer();

    harness::Campaign resumed(opts, makeGen(5));
    soc::SnapshotReader r(image);
    std::string error;
    ASSERT_TRUE(resumed.loadState(r, &error)) << error;
    ASSERT_TRUE(r.exhausted());
    EXPECT_EQ(resumed.metrics().snapshot().entries(),
              donor.metrics().snapshot().entries());

    // The restored series stays continuous.
    resumed.runIteration();
    EXPECT_EQ(resumed.metrics().snapshot().counterValue(
                  "campaign.iterations"),
              41u);
}

// --- Fleet integration -----------------------------------------------

FleetConfig
fleetConfig(unsigned shards)
{
    FleetConfig fc;
    fc.fleetSeed = 7;
    fc.shardCount = shards;
    fc.budgetSec = 2.0;
    fc.epochSec = 0.5;
    return fc;
}

TEST(FleetTelemetry, StatsAndTraceDoNotChangeResults)
{
    const harness::CampaignOptions copts = campaignOpts();
    const fuzzer::FuzzerOptions fopts;

    fleet::FleetOrchestrator plain(fleetConfig(2), copts, fopts,
                                   &lib());
    const fleet::FleetResult base = plain.run();

    FleetConfig fc = fleetConfig(2);
    fc.statsFile =
        ::testing::TempDir() + "telemetry_fleet_test.jsonl";
    fc.traceOut =
        ::testing::TempDir() + "telemetry_fleet_test.trace.json";
    fc.traceSampleEvery = 5;
    fc.stageTiming = true;
    fleet::FleetOrchestrator traced(fc, copts, fopts, &lib());
    const fleet::FleetResult got = traced.run();

    // The observer contract, fleet-wide.
    EXPECT_EQ(got.mergedFinalCoverage, base.mergedFinalCoverage);
    EXPECT_EQ(got.totals.iterations, base.totals.iterations);
    EXPECT_EQ(got.totals.executedInstrs,
              base.totals.executedInstrs);
    EXPECT_EQ(got.totals.mismatches, base.totals.mismatches);

    // Metrics merged across shards: fleet counters plus per-shard
    // campaign counters summed.
    EXPECT_EQ(got.metrics.counterValue("campaign.iterations"),
              got.totals.iterations);
    EXPECT_EQ(got.metrics.counterValue("fleet.epochs"),
              got.epochs);
    EXPECT_GT(got.metrics.counterValue("engine.batch.dut_ns"), 0u);

    // Artifacts exist and look like what they claim to be.
    std::ifstream stats(fc.statsFile);
    std::string line;
    ASSERT_TRUE(std::getline(stats, line)) << fc.statsFile;
    EXPECT_EQ(line.find("{\"schema\":\"turbofuzz.metrics.v1\""),
              0u);
    std::ifstream trace(fc.traceOut);
    std::stringstream trace_doc;
    trace_doc << trace.rdbuf();
    EXPECT_NE(trace_doc.str().find("\"traceEvents\""),
              std::string::npos);
    EXPECT_NE(trace_doc.str().find("\"name\":\"engine.dut_batch\""),
              std::string::npos);
    EXPECT_NE(trace_doc.str().find("\"name\":\"fleet.barrier\""),
              std::string::npos);
    std::remove(fc.statsFile.c_str());
    std::remove(fc.traceOut.c_str());
}

TEST(FleetTelemetry, ResultMetricsAlwaysPopulated)
{
    // No telemetry flags at all: the merged metrics still ride on
    // the result (the hot path is unconditionally on).
    fleet::FleetOrchestrator orch(fleetConfig(1), campaignOpts(),
                                  fuzzer::FuzzerOptions{}, &lib());
    const fleet::FleetResult result = orch.run();
    EXPECT_EQ(result.metrics.counterValue("campaign.iterations"),
              result.totals.iterations);
    EXPECT_GT(result.metrics.counterValue("corpus.admits"), 0u);
}

} // namespace
} // namespace turbofuzz::telemetry
