// tflint fixture: file-level suppression silences a whole rule for
// the file; other rules still apply (but none are violated here).
// tflint: allow-file(determinism)
// (No expectations: the fixture must lint clean.)

#include <chrono>
#include <cstdlib>

namespace turbofuzz
{

double
wholeFileWaived()
{
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<double>(t.count()) + rand();
}

} // namespace turbofuzz
