// tflint fixture: every sanctioned-wrapper bypass the determinism
// rule must catch. Each marked line is one finding.
// tflint-fixture: expect determinism 6

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace turbofuzz
{

uint64_t
badWallClock()
{
    auto t = std::chrono::steady_clock::now(); // finding: std::chrono
    (void)t;
    return static_cast<uint64_t>(time(nullptr)); // finding: time()
}

double
badClockCall()
{
    return static_cast<double>(clock()); // finding: clock()
}

int
badRandomness()
{
    std::random_device rd;   // finding: random_device
    std::mt19937 gen(rd());  // finding: <random> engine
    return rand();           // finding: rand()
}

} // namespace turbofuzz
