// tflint fixture: sanctioned time/randomness use plus the
// near-miss identifiers that must NOT trip the token patterns.
// (No expectations: the fixture must lint clean.)

#include <cstdint>

namespace turbofuzz
{

struct SimClock
{
    double seconds() const { return 0.0; }
};

class Platform
{
  public:
    // Accessor *named* clock() — not a libc clock() call.
    SimClock &clock() { return clk; }
    double captureTime() const { return clk.seconds(); }

  private:
    SimClock clk;
};

struct Rng
{
    uint64_t next() { return state += 0x9e3779b97f4a7c15ull; }
    uint64_t state = 1;
};

// "rand" embedded in a longer identifier must not match \brand\b.
uint64_t
randomOperands(Rng &rng)
{
    return rng.next();
}

// Simulated time is the deterministic timebase — always fine.
double
sampleSimTime(const Platform &p)
{
    return p.captureTime();
}

// Strings and comments are scrubbed before token matching:
// rand() time(NULL) std::chrono  <- none of these count.
const char *kDoc = "calls rand() and time(NULL) and std::chrono";

} // namespace turbofuzz
