// tflint fixture: unordered-container iteration inside
// serialization/merge paths — the order leaks into serialized or
// merged state and breaks bit-exact resume.
// tflint-fixture: expect determinism 3

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace turbofuzz
{

struct Writer
{
    void putU64(uint64_t) {}
};

class Ledger
{
  public:
    void
    saveState(Writer &out) const
    {
        for (const auto &[key, value] : entries) // finding
            out.putU64(key + value);
    }

    void
    merge(const Ledger &other)
    {
        // Explicit iterator form is just as order-dependent.
        for (auto it = other.entries.begin(); // finding
             it != other.entries.end(); ++it)
            entries[it->first] += it->second;
    }

    std::vector<uint8_t>
    serialize() const
    {
        std::vector<uint8_t> out;
        for (uint64_t key : seen) // finding
            out.push_back(static_cast<uint8_t>(key));
        return out;
    }

  private:
    std::unordered_map<uint64_t, uint64_t> entries;
    std::unordered_set<uint64_t> seen;
};

} // namespace turbofuzz
