// tflint fixture: the two legitimate shapes — sort before
// serializing, and unordered iteration outside serialization paths.
// (No expectations: the fixture must lint clean.)

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace turbofuzz
{

struct Writer
{
    void putU64(uint64_t) {}
};

class Ledger
{
  public:
    void
    saveState(Writer &out) const
    {
        // Sorted snapshot first: iteration order is canonical.
        for (const auto &[key, value] : sortedEntries())
            out.putU64(key + value);
    }

    // Unordered iteration in a *query* (not a serialization path)
    // is fine: the result is order-independent.
    uint64_t
    maxValue() const
    {
        uint64_t best = 0;
        for (const auto &[key, value] : entries) {
            (void)key;
            best = std::max(best, value);
        }
        return best;
    }

  private:
    std::vector<std::pair<uint64_t, uint64_t>>
    sortedEntries() const
    {
        std::vector<std::pair<uint64_t, uint64_t>> out(
            entries.begin(), entries.end());
        std::sort(out.begin(), out.end());
        return out;
    }

    std::unordered_map<uint64_t, uint64_t> entries;
};

} // namespace turbofuzz
