// tflint fixture: each forbidden-token family inside functions
// marked `// tflint: hot-path` — heap allocation, map lookups and
// lock acquisition.
// tflint-fixture: expect hot-path 7

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>

namespace turbofuzz
{

class HotLoop
{
  public:
    // tflint: hot-path
    uint64_t
    stepAllocates(uint64_t pc)
    {
        auto *scratch = new uint64_t[4]; // finding: new
        scratch[0] = pc;
        uint64_t v = scratch[0];
        delete[] scratch;
        return v;
    }

    // tflint: hot-path
    uint64_t
    stepLooksUp(uint64_t pc)
    {
        std::map<uint64_t, uint64_t> local; // finding: std::map
        auto it = table.find(pc);           // finding: map lookup
        return it == table.end() ? local[pc] // finding: map indexing
                                 : it->second;
    }

    // tflint: hot-path
    uint64_t
    stepLocks(uint64_t pc)
    {
        std::lock_guard<std::mutex> g(mtx); // finding: lock_guard
        mtx.lock();                         // finding: .lock()
        uint64_t v = table2[pc];            // finding: map indexing
        mtx.unlock();
        return v;
    }

  private:
    std::unordered_map<uint64_t, uint64_t> table;
    std::unordered_map<uint64_t, uint64_t> table2;
    std::mutex mtx;
};

} // namespace turbofuzz
