// tflint fixture: a hot-path function written the sanctioned way
// (preallocated flat arrays, no locks), and a *cold* setup function
// that allocates freely — the rule only applies where the
// annotation is.
// (No expectations: the fixture must lint clean.)

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace turbofuzz
{

class DecodeCache
{
  public:
    // Cold construction: heap allocation and locking are fine here.
    DecodeCache()
    {
        lines = std::make_unique<uint64_t[]>(4096);
        std::lock_guard<std::mutex> g(initLock);
        generation = 1;
    }

    // tflint: hot-path
    uint64_t
    lookup(uint64_t pc) const
    {
        const size_t idx = (pc >> 2) & 4095u;
        return lines[idx] == pc ? pc : 0;
    }

    // tflint: hot-path
    void
    fill(uint64_t pc)
    {
        const size_t idx = (pc >> 2) & 4095u;
        lines[idx] = pc;
    }

  private:
    std::unique_ptr<uint64_t[]> lines;
    std::mutex initLock;
    uint32_t generation = 0;
};

} // namespace turbofuzz
