// tflint fixture: suppression-comment behavior — same-line allow,
// line-above allow, and a multi-line justification block. All
// violations here are suppressed.
// (No expectations: the fixture must lint clean.)

#include <chrono>
#include <cstdint>
#include <unordered_map>

namespace turbofuzz
{

uint64_t
benchOnlyTimestamp()
{
    // Same-line suppression.
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now() // tflint: allow(determinism) -- bench-only
            .time_since_epoch()
            .count());
}

struct Writer
{
    void putU64(uint64_t) {}
};

class Ledger
{
  public:
    void
    merge(const Ledger &other)
    {
        // tflint: allow(determinism) -- max-wins merge is per-key
        // commutative, so iteration order cannot affect the merged
        // result (multi-line justification block).
        for (const auto &[key, value] : other.entries) {
            uint64_t &slot = entries[key];
            if (value > slot)
                slot = value;
        }
    }

  private:
    std::unordered_map<uint64_t, uint64_t> entries;
};

} // namespace turbofuzz
