// tflint fixture: a suppression only covers its own rule and line —
// the second violation still fires.
// tflint-fixture: expect determinism 1

#include <chrono>
#include <cstdint>

namespace turbofuzz
{

uint64_t
suppressedRead()
{
    // tflint: allow(determinism) -- fixture: deliberate
    auto a = std::chrono::steady_clock::now();
    auto b = std::chrono::steady_clock::now(); // finding: not covered
    return static_cast<uint64_t>(
        (b - a).count()); // tflint: allow(determinism) -- operator- ok
}

} // namespace turbofuzz
