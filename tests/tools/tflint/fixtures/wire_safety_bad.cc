// tflint fixture: a trust-boundary function that constructs a
// SnapshotReader over raw bytes and runs a naked get* chain — no
// SnapshotFormatError catch, no remaining() length validation.
// tflint-fixture: expect wire-safety 1

#include <cstdint>
#include <vector>

namespace turbofuzz::soc
{
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<uint8_t> &d) : b(d) {}
    uint64_t getU64() { return 0; }
    uint32_t getU32() { return 0; }

  private:
    const std::vector<uint8_t> &b;
};
} // namespace turbofuzz::soc

namespace turbofuzz
{

struct Header
{
    uint64_t magic;
    uint32_t version;
};

Header
parseHeader(const std::vector<uint8_t> &bytes)
{
    soc::SnapshotReader r(bytes); // finding: unguarded trust boundary
    Header h;
    h.magic = r.getU64();
    h.version = r.getU32();
    return h;
}

} // namespace turbofuzz
