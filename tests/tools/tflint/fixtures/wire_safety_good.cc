// tflint fixture: the three sanctioned SnapshotReader shapes — a
// function-try-block catching SnapshotFormatError, an explicit
// remaining() length pre-validation, and a mid-chain consumer that
// only *receives* a reader (the boundary already guarded upstream).
// (No expectations: the fixture must lint clean.)

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace turbofuzz::soc
{
class SnapshotFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<uint8_t> &d) : b(d) {}
    uint64_t getU64() { return 0; }
    size_t remaining() const { return b.size(); }

  private:
    const std::vector<uint8_t> &b;
};
} // namespace turbofuzz::soc

namespace turbofuzz
{

struct State
{
    uint64_t a = 0;
    uint64_t b = 0;
};

// Shape 1: function-try-block converts underruns to a typed error.
bool
tryLoad(const std::vector<uint8_t> &bytes, State &out,
        std::string *error)
try {
    soc::SnapshotReader r(bytes);
    out.a = r.getU64();
    out.b = r.getU64();
    return true;
} catch (const soc::SnapshotFormatError &e) {
    if (error)
        *error = e.what();
    return false;
}

// Shape 2: length validation via remaining() before the get chain.
std::optional<State>
tryParse(const std::vector<uint8_t> &bytes)
{
    soc::SnapshotReader r(bytes);
    if (r.remaining() < 16)
        return std::nullopt;
    State s;
    s.a = r.getU64();
    s.b = r.getU64();
    return s;
}

// Shape 3: mid-chain loadState receives an already-guarded reader.
void
loadFields(soc::SnapshotReader &r, State &out)
{
    out.a = r.getU64();
    out.b = r.getU64();
}

} // namespace turbofuzz
