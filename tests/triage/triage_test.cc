/**
 * @file
 * Triage pipeline tests: reproducer capture, deterministic replay,
 * minimization, signatures, bucketing and fleet integration.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/fleet_config.hh"
#include "fleet/orchestrator.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"
#include "triage/minimizer.hh"
#include "triage/replay.hh"
#include "triage/signature.hh"
#include "triage/triage_queue.hh"

namespace turbofuzz::triage
{
namespace
{

isa::InstructionLibrary &
lib()
{
    static isa::InstructionLibrary l = harness::makeDefaultLibrary();
    return l;
}

harness::CampaignOptions
campaignOpts(core::BugSet bugs,
             core::CoreKind kind = core::CoreKind::Cva6)
{
    harness::CampaignOptions o;
    o.timing = soc::turboFuzzProfile();
    o.coreKind = kind;
    o.bugs = bugs;
    o.maxReproducers = 4;
    // C8's configuration ships with RV64A disabled.
    o.rv64aEnabled = !bugs.has(core::BugId::C8);
    return o;
}

fuzzer::FuzzerOptions
fuzzerOpts(uint64_t seed = 1)
{
    fuzzer::FuzzerOptions o;
    o.seed = seed;
    o.instrsPerIteration = 1000;
    return o;
}

/** Run until the campaign captures a reproducer (or iteration cap). */
std::optional<Reproducer>
firstReproducer(core::BugSet bugs, uint64_t seed = 1,
                checker::DiffChecker::Mode mode =
                    checker::DiffChecker::Mode::PerInstruction)
{
    harness::CampaignOptions copts = campaignOpts(bugs);
    copts.checkMode = mode;
    harness::Campaign campaign(
        copts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                   fuzzerOpts(seed), &lib()));
    for (int i = 0; i < 5000 && campaign.reproducers().empty(); ++i)
        campaign.runIteration();
    if (campaign.reproducers().empty())
        return std::nullopt;
    return campaign.reproducers().front();
}

TEST(ReproducerCapture, CampaignRetainsMismatchingStimulus)
{
    harness::Campaign campaign(
        campaignOpts(core::BugSet::single(core::BugId::R1),
                     core::CoreKind::Rocket),
        std::make_unique<fuzzer::TurboFuzzGenerator>(fuzzerOpts(),
                                                     &lib()));
    for (int i = 0; i < 5000 && campaign.reproducers().empty(); ++i)
        campaign.runIteration();
    ASSERT_FALSE(campaign.reproducers().empty());

    const Reproducer &r = campaign.reproducers().front();
    EXPECT_FALSE(r.iteration.blocks.empty());
    EXPECT_GT(r.iteration.generatedInstrs, 0u);
    EXPECT_TRUE(r.bugs().has(core::BugId::R1));
    EXPECT_EQ(r.mismatch.kind, checker::MismatchKind::Minstret);
    EXPECT_GT(r.detectSimTimeSec, 0.0);
    // The stimulus blocks sum to the recorded instruction count.
    uint32_t instrs = 0;
    for (const auto &b : r.iteration.blocks)
        instrs += b.instrCount();
    EXPECT_EQ(instrs, r.iteration.generatedInstrs);
}

TEST(ReproducerCapture, CapRespectedAndGeneratorGated)
{
    harness::CampaignOptions copts =
        campaignOpts(core::BugSet::single(core::BugId::B1));
    copts.maxReproducers = 2;
    harness::Campaign campaign(
        copts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                   fuzzerOpts(), &lib()));
    for (int i = 0; i < 200; ++i)
        campaign.runIteration();
    EXPECT_LE(campaign.reproducers().size(), 2u);
}

TEST(Replay, ConfirmsRecordedMismatchBitExactly)
{
    const auto r =
        firstReproducer(core::BugSet::single(core::BugId::B1));
    ASSERT_TRUE(r.has_value());

    const ReplayResult out = ReplayHarness::replay(*r);
    ASSERT_TRUE(out.mismatched);
    EXPECT_EQ(out.mismatch.kind, r->mismatch.kind);
    EXPECT_EQ(out.mismatch.pc, r->mismatch.pc);
    EXPECT_EQ(out.mismatch.insn, r->mismatch.insn);
    EXPECT_EQ(out.mismatch.dutValue, r->mismatch.dutValue);
    EXPECT_EQ(out.mismatch.refValue, r->mismatch.refValue);
    EXPECT_EQ(out.commitIndex, r->commitIndex);
    EXPECT_TRUE(ReplayHarness::confirms(*r, out));
    EXPECT_TRUE(ReplayHarness::verifyDeterministic(*r));
}

TEST(Replay, EndOfIterationModeReproduces)
{
    const auto r =
        firstReproducer(core::BugSet::single(core::BugId::B1), 1,
                        checker::DiffChecker::Mode::EndOfIteration);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(ReplayHarness::verifyDeterministic(*r));
}

TEST(Replay, WithoutTheBugTheMismatchVanishes)
{
    auto r = firstReproducer(core::BugSet::single(core::BugId::B1));
    ASSERT_TRUE(r.has_value());
    Reproducer healthy = *r;
    healthy.bugsRaw = 0; // "fixed" DUT
    EXPECT_FALSE(ReplayHarness::replay(healthy).mismatched);
}

TEST(Reproducer, SerializeRoundTripReplaysIdentically)
{
    const auto r =
        firstReproducer(core::BugSet::single(core::BugId::B1));
    ASSERT_TRUE(r.has_value());

    const std::vector<uint8_t> bytes = r->serialize();
    const Reproducer back = Reproducer::deserialize(bytes);
    EXPECT_EQ(back.bugsRaw, r->bugsRaw);
    EXPECT_EQ(back.commitIndex, r->commitIndex);
    EXPECT_EQ(back.iteration.blocks.size(),
              r->iteration.blocks.size());
    EXPECT_EQ(back.mismatch.pc, r->mismatch.pc);
    EXPECT_TRUE(ReplayHarness::verifyDeterministic(back));
}

TEST(Reproducer, MalformedInputRejectedGracefully)
{
    const auto r =
        firstReproducer(core::BugSet::single(core::BugId::B1));
    ASSERT_TRUE(r.has_value());
    std::vector<uint8_t> bytes = r->serialize();

    std::string error;
    // Truncations at every prefix length must fail cleanly.
    for (size_t cut : {size_t{0}, size_t{3}, size_t{40},
                       bytes.size() - 1}) {
        std::vector<uint8_t> t(bytes.begin(),
                               bytes.begin() +
                                   static_cast<long>(cut));
        EXPECT_FALSE(
            Reproducer::tryDeserialize(t, &error).has_value());
    }
    // Bad magic.
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(Reproducer::tryDeserialize(bad).has_value());
    EXPECT_THROW(Reproducer::deserialize(bad),
                 fuzzer::SeedFormatError);
    // Trailing garbage.
    std::vector<uint8_t> long_buf = bytes;
    long_buf.push_back(0);
    EXPECT_FALSE(Reproducer::tryDeserialize(long_buf).has_value());

    // Corrupt enum bytes (core kind at offset 6, mismatch kind after
    // the fixed scalar fields) must fail parsing rather than panic
    // in downstream switches.
    std::vector<uint8_t> bad_core = bytes;
    bad_core[6] = 0x7F;
    EXPECT_FALSE(
        Reproducer::tryDeserialize(bad_core, &error).has_value());
    EXPECT_NE(error.find("core kind"), std::string::npos);

    // A corrupted data-segment size must not parse into a record
    // whose replay would attempt a multi-gigabyte memory fill
    // (dataSize is the u64 at offset 70).
    std::vector<uint8_t> huge_data = bytes;
    huge_data[77] = 0xFF;
    EXPECT_FALSE(
        Reproducer::tryDeserialize(huge_data, &error).has_value());
    EXPECT_NE(error.find("segment size"), std::string::npos);

    // A corrupted fuzz-region start must not reach the replay
    // harness's layout invariant (firstBlockPc is the u64 at 102).
    std::vector<uint8_t> bad_first = bytes;
    bad_first[108] = 0x7F;
    EXPECT_FALSE(
        Reproducer::tryDeserialize(bad_first, &error).has_value());
    EXPECT_NE(error.find("preamble"), std::string::npos);
}

TEST(Minimizer, ShrinksStrictlyAndStillFires)
{
    const auto r =
        firstReproducer(core::BugSet::single(core::BugId::B1));
    ASSERT_TRUE(r.has_value());

    const Minimizer minimizer({256, true});
    const MinimizeResult red = minimizer.minimize(*r);
    ASSERT_TRUE(red.confirmed);
    EXPECT_LT(red.minimizedInstrs, red.originalInstrs);
    EXPECT_LE(red.minimizedBlocks, red.originalBlocks);
    EXPECT_GT(red.minimizedInstrs, 0u);
    EXPECT_LE(red.replays, 256u + 1u);

    // Same bug, and the reduced record self-confirms twice over.
    EXPECT_EQ(red.minimized.mismatch.kind, r->mismatch.kind);
    EXPECT_EQ(canonicalize(red.minimized), canonicalize(*r));
    EXPECT_TRUE(ReplayHarness::verifyDeterministic(red.minimized));
}

TEST(Minimizer, RebuildRepatchesControlFlow)
{
    const auto r =
        firstReproducer(core::BugSet::single(core::BugId::B1));
    ASSERT_TRUE(r.has_value());

    // Keeping every block must replay to the identical mismatch:
    // re-layout at unchanged addresses is the identity transform.
    Reproducer same =
        Minimizer::rebuild(*r, r->iteration.blocks);
    EXPECT_EQ(same.iteration.generatedInstrs,
              r->iteration.generatedInstrs);
    EXPECT_EQ(same.iteration.codeBoundary,
              r->iteration.codeBoundary);
    EXPECT_TRUE(
        ReplayHarness::confirms(*r, ReplayHarness::replay(same)));
}

TEST(Signature, StableAcrossSeedsAndDistinctAcrossBugs)
{
    const auto a =
        firstReproducer(core::BugSet::single(core::BugId::R1), 1);
    const auto b =
        firstReproducer(core::BugSet::single(core::BugId::R1), 7);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    // Different stimuli, different PCs — identical signature.
    EXPECT_NE(a->mismatch.pc, b->mismatch.pc);
    EXPECT_EQ(canonicalize(*a), canonicalize(*b));

    const auto c =
        firstReproducer(core::BugSet::single(core::BugId::C5), 1);
    ASSERT_TRUE(c.has_value());
    EXPECT_NE(canonicalize(*a).key(), canonicalize(*c).key());
}

TEST(Signature, OpcodeClassesAndKeys)
{
    // beq x0,x0,+8 / jal / ebreak / invalid word.
    EXPECT_EQ(opcodeClass(0x00000463), "branch");
    EXPECT_EQ(opcodeClass(0x0000006F), "jump");
    EXPECT_EQ(opcodeClass(0x00100073), "ebreak");
    EXPECT_EQ(opcodeClass(0xFFFFFFFF), "invalid");

    BugSignature sig;
    sig.kind = checker::MismatchKind::Fflags;
    sig.opClass = "fdiv";
    sig.detail = "flags:0x18";
    sig.region = PcRegion::FuzzRegion;
    EXPECT_EQ(sig.key(), "fflags/fdiv/flags:0x18@fuzz");
    EXPECT_NE(sig.describe().find("fdiv"), std::string::npos);
}

/**
 * Warm replay context equivalence: Context::replay must be
 * bit-identical to the cold ReplayHarness::replay for the original
 * reproducer AND for rebuilt (minimizer-shaped) candidates — the
 * property that lets delta debugging run on the warm path.
 */
TEST(ReplayContext, MatchesColdReplayBitExactly)
{
    for (const core::BugId id :
         {core::BugId::R1, core::BugId::C5, core::BugId::C8}) {
        const auto r = firstReproducer(core::BugSet::single(id));
        ASSERT_TRUE(r.has_value())
            << "bug " << static_cast<int>(id) << " not detected";

        const ReplayHarness::Context ctx(*r);
        ASSERT_TRUE(ctx.compatible(*r));

        auto expect_same = [&](const Reproducer &cand,
                               const char *what) {
            SCOPED_TRACE(what);
            const ReplayResult cold = ReplayHarness::replay(cand);
            const ReplayResult warmed = ctx.replay(cand);
            EXPECT_EQ(cold.mismatched, warmed.mismatched);
            EXPECT_EQ(cold.executed, warmed.executed);
            EXPECT_EQ(cold.traps, warmed.traps);
            EXPECT_EQ(cold.commitIndex, warmed.commitIndex);
            EXPECT_EQ(cold.mismatch.kind, warmed.mismatch.kind);
            EXPECT_EQ(cold.mismatch.pc, warmed.mismatch.pc);
            EXPECT_EQ(cold.mismatch.insn, warmed.mismatch.insn);
            EXPECT_EQ(cold.mismatch.dutValue,
                      warmed.mismatch.dutValue);
            EXPECT_EQ(cold.mismatch.refValue,
                      warmed.mismatch.refValue);
        };
        expect_same(*r, "original");

        // Minimizer-shaped candidates: a front half and a back half
        // of the block list, re-laid-out through rebuild().
        const auto &blocks = r->iteration.blocks;
        if (blocks.size() >= 4) {
            const auto mid = blocks.begin() +
                             static_cast<long>(blocks.size() / 2);
            expect_same(
                Minimizer::rebuild(
                    *r, std::vector<fuzzer::SeedBlock>(
                            blocks.begin(), mid)),
                "front-half candidate");
            expect_same(
                Minimizer::rebuild(
                    *r, std::vector<fuzzer::SeedBlock>(
                            mid, blocks.end())),
                "back-half candidate");
        }
    }
}

/** The minimizer (now running on the warm context) must still
 *  produce byte-identical reduced reproducers run-over-run. */
TEST(ReplayContext, MinimizerDeterministicOnWarmPath)
{
    const auto r = firstReproducer(
        core::BugSet::single(core::BugId::C5));
    ASSERT_TRUE(r.has_value());
    const Minimizer minimizer({128, true});
    const MinimizeResult a = minimizer.minimize(*r);
    const MinimizeResult b = minimizer.minimize(*r);
    ASSERT_TRUE(a.confirmed);
    EXPECT_EQ(a.replays, b.replays);
    EXPECT_EQ(a.minimized.serialize(), b.minimized.serialize());
    EXPECT_TRUE(ReplayHarness::verifyDeterministic(a.minimized));
}

TEST(TriageQueue, BucketsEachInjectedBugOnce)
{
    // Ground truth: one single-bug campaign per catalog bug; every
    // bug's reproducers must land in exactly one bucket.
    const std::vector<core::BugId> injected = {
        core::BugId::R1, core::BugId::C5, core::BugId::C8};

    TriageQueue queue({64, true});
    std::vector<std::string> reference;
    for (core::BugId id : injected) {
        const auto r =
            firstReproducer(core::BugSet::single(id));
        ASSERT_TRUE(r.has_value())
            << "bug " << static_cast<int>(id) << " not detected";
        reference.push_back(canonicalize(*r).key());
        queue.push(*r);
        queue.push(*r); // duplicate detection of the same bug
    }
    EXPECT_EQ(queue.bucketCount(), injected.size());
    EXPECT_EQ(queue.reproducersSeen(), 2 * injected.size());
    for (size_t i = 0; i < queue.bucketCount(); ++i) {
        EXPECT_EQ(queue.buckets()[i].signature.key(), reference[i]);
        EXPECT_EQ(queue.buckets()[i].hits, 2u);
    }

    queue.minimizeAll();
    for (const BugBucket &bucket : queue.buckets()) {
        EXPECT_TRUE(bucket.minimized);
        EXPECT_TRUE(bucket.reduction.confirmed);
        EXPECT_LT(bucket.reduction.minimizedInstrs,
                  bucket.reduction.originalInstrs);
    }
}

/**
 * Acceptance: a fleet campaign with three injected bugs buckets its
 * harvested mismatches into exactly the distinct injected bugs hit,
 * every minimized reproducer still fires the same MismatchKind under
 * replay, is strictly smaller than the original iteration, and
 * replays bit-identically — independent of worker scheduling.
 */
TEST(FleetTriage, BucketsInjectedBugsWithMinimizedReproducers)
{
    core::BugSet bugs;
    bugs.enable(core::BugId::C1);
    bugs.enable(core::BugId::R1);
    bugs.enable(core::BugId::C5);

    // Reference signature per injected bug (single-bug campaigns).
    std::map<std::string, core::BugId> reference;
    for (core::BugId id : bugs.enabled()) {
        const auto r = firstReproducer(core::BugSet::single(id));
        ASSERT_TRUE(r.has_value());
        reference[canonicalize(*r).key()] = id;
    }
    ASSERT_EQ(reference.size(), 3u) << "reference signatures collide";

    auto runFleet = [&](unsigned threads) {
        FleetConfig fc;
        fc.fleetSeed = 1;
        fc.shardCount = 2;
        fc.budgetSec = 8.0;
        fc.epochSec = 2.0;
        fc.workerThreads = threads;
        fc.maxReproducersPerShard = 16;
        fc.triageReplayBudget = 64;
        harness::CampaignOptions copts = campaignOpts(bugs);
        return fleet::FleetOrchestrator(fc, copts, fuzzerOpts(),
                                        &lib())
            .run();
    };
    const fleet::FleetResult result = runFleet(2);

    ASSERT_GT(result.reproducersHarvested, 0u);
    ASSERT_FALSE(result.bugTable.empty());
    EXPECT_LE(result.bugTable.size(), 3u);

    uint64_t hits = 0;
    for (const triage::TriageRow &row : result.bugTable) {
        // Every bucket attributes to exactly one injected bug.
        EXPECT_TRUE(reference.count(row.signature))
            << "unattributed bucket: " << row.signature;
        hits += row.hits;
        // Minimized reproducers are strictly smaller and confirmed.
        EXPECT_TRUE(row.confirmed) << row.signature;
        EXPECT_LT(row.minimizedInstrs, row.originalInstrs);
        EXPECT_GT(row.firstDetectSimTime, 0.0);
    }
    // Buckets partition the harvest: nothing dropped, nothing twice.
    EXPECT_EQ(hits, result.reproducersHarvested);

    // Triage is part of the fleet determinism contract: a fully
    // serialized schedule yields the identical per-bug table.
    const fleet::FleetResult serial = runFleet(1);
    ASSERT_EQ(serial.bugTable.size(), result.bugTable.size());
    for (size_t i = 0; i < result.bugTable.size(); ++i) {
        EXPECT_EQ(serial.bugTable[i].signature,
                  result.bugTable[i].signature);
        EXPECT_EQ(serial.bugTable[i].hits, result.bugTable[i].hits);
        EXPECT_DOUBLE_EQ(serial.bugTable[i].firstDetectSimTime,
                         result.bugTable[i].firstDetectSimTime);
        EXPECT_EQ(serial.bugTable[i].minimizedInstrs,
                  result.bugTable[i].minimizedInstrs);
    }
}

} // namespace
} // namespace turbofuzz::triage
