#!/usr/bin/env python3
"""Bench-regression gate over google-benchmark JSON output.

Compares the committed baseline (bench/baselines/) against a freshly
produced BENCH_micro_throughput.json and fails (exit 1) when any
throughput benchmark's commits/sec (the `items_per_second` counter)
drops by more than --max-drop relative to the baseline. Benchmarks
without an items_per_second counter are timing microbenches and are
reported but not gated (wall-time noise on shared CI runners is far
above 10%; the committed-instruction rates aggregate enough work to
be stable).

Refresh the baseline whenever the CI runner hardware class changes or
a deliberate perf trade-off is accepted:

    ./micro_throughput --benchmark_out=BENCH_micro_throughput.json \
        --benchmark_out_format=json --benchmark_min_time=0.2
    cp BENCH_micro_throughput.json bench/baselines/

Usage: bench_regress.py BASELINE.json CURRENT.json [--max-drop 0.10]
"""

import argparse
import json
import sys


def load_rates(path):
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("items_per_second")
        if rate is not None and rate > 0:
            rates[bench["name"]] = rate
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.10,
        help="maximum tolerated relative commits/sec drop (default 0.10)",
    )
    args = parser.parse_args()

    baseline = load_rates(args.baseline)
    current = load_rates(args.current)
    if not baseline:
        print(f"error: no items_per_second entries in {args.baseline}")
        return 1

    failures = []
    missing = []
    width = max(len(n) for n in baseline)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            missing.append(name)
            print(f"{name:<{width}}  {base:>12.0f}  {'MISSING':>12}")
            continue
        delta = (cur - base) / base
        flag = ""
        if delta < -args.max_drop:
            failures.append((name, delta))
            flag = "  << REGRESSION"
        print(
            f"{name:<{width}}  {base:>12.0f}  {cur:>12.0f}  "
            f"{delta:+7.1%}{flag}"
        )

    new_names = sorted(set(current) - set(baseline))
    for name in new_names:
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>12.0f}")

    if missing:
        print(f"\nerror: benchmarks missing from current run: {missing}")
        return 1
    if failures:
        drops = ", ".join(f"{n} ({d:+.1%})" for n, d in failures)
        print(
            f"\nerror: commits/sec regressed more than "
            f"{args.max_drop:.0%} vs baseline: {drops}"
        )
        return 1
    print(f"\nok: no benchmark dropped more than {args.max_drop:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
