#!/usr/bin/env python3
"""Bench-regression gate over benchmark JSON output.

Two input formats, selected with --mode:

- `rates` (default): google-benchmark JSON. Compares the committed
  baseline (bench/baselines/) against a freshly produced
  BENCH_micro_throughput.json and fails (exit 1) when any throughput
  benchmark's commits/sec (the `items_per_second` counter) drops by
  more than --max-drop relative to the baseline. Benchmarks without
  an items_per_second counter are timing microbenches and are
  reported but not gated (wall-time noise on shared CI runners is far
  above 10%; the committed-instruction rates aggregate enough work to
  be stable).
- `metrics`: the repo's own bench JsonResult documents
  (BENCH_<id>.json with "bench"/"metrics"/"series" keys, see
  bench/bench_util.hh). Gates the scalar `metrics` entries directly,
  higher-is-better, same --max-drop drop rule. Repeatable
  `--metric GLOB` selectors restrict the gate to matching metric
  names (fnmatch syntax) — CI uses this to gate
  `shards-8-host-efficiency` from BENCH_fleet_scaling.json without
  also gating wall-clock-noisy absolute timings in the same file.
  Baseline and current must come from the same bench arguments; the
  gate compares runs, not configurations.

Single-shot rates on shared runners are too noisy for a 10% gate —
transient load during one 0.2s measurement window shows up as a
±30% swing. Both the baseline and the current run should therefore
be produced with --benchmark_repetitions (CI uses 5): the gate
compares per-benchmark MEDIANS. A `*_median` aggregate emitted by
google-benchmark wins when present; otherwise the median of the
repetition entries sharing a name is computed here (a single-run
file degenerates to its one value, so old baselines keep working).

Missing or malformed input files are hard errors (exit 1 with a
message naming the file) — a gate that silently passes on an empty
run protects nothing. `--self-test` exercises the loader's failure
modes and the comparison logic without any input files; CI runs it
before trusting the gate.

Refresh the baseline whenever the CI runner hardware class changes or
a deliberate perf trade-off is accepted:

    ./micro_throughput --benchmark_out=BENCH_micro_throughput.json \
        --benchmark_out_format=json --benchmark_min_time=0.2 \
        --benchmark_repetitions=5
    cp BENCH_micro_throughput.json bench/baselines/

Usage: bench_regress.py BASELINE.json CURRENT.json [--max-drop 0.10]
       bench_regress.py --mode metrics --metric 'shards-8-host-*' \\
           BASELINE.json CURRENT.json
       bench_regress.py --self-test
"""

import argparse
import fnmatch
import json
import statistics
import sys


class BenchFileError(Exception):
    """A benchmark JSON file that cannot be trusted as gate input."""


def load_rates(path):
    """Parse a google-benchmark JSON file into {name: items_per_second}.

    With --benchmark_repetitions the file holds one entry per
    repetition (all sharing a name) plus mean/median/stddev
    aggregates; the per-benchmark rate here is the MEDIAN across
    repetitions — a google-benchmark `median` aggregate when emitted,
    otherwise computed from the repetition entries. A single-run file
    yields its one value unchanged.

    Raises BenchFileError (never returns a silently empty dict for a
    broken file) when the file is missing, not JSON, or not shaped
    like google-benchmark output.
    """
    try:
        with open(path) as f:
            raw = f.read()
    except OSError as e:
        raise BenchFileError(f"cannot read benchmark file {path}: {e}")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as e:
        raise BenchFileError(f"malformed JSON in {path}: {e}")
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        raise BenchFileError(
            f"{path}: not google-benchmark output (no 'benchmarks' key)"
        )
    if not isinstance(doc["benchmarks"], list):
        raise BenchFileError(f"{path}: 'benchmarks' is not a list")

    def rate_of(bench):
        rate = bench.get("items_per_second")
        if rate is not None and not isinstance(rate, (int, float)):
            raise BenchFileError(
                f"{path}: non-numeric items_per_second for "
                f"{bench['name']}: {rate!r}"
            )
        return rate

    samples = {}  # name -> [rate per repetition]
    medians = {}  # name -> rate from a `median` aggregate entry
    for bench in doc["benchmarks"]:
        if not isinstance(bench, dict) or "name" not in bench:
            raise BenchFileError(
                f"{path}: benchmark entry without a name: {bench!r}"
            )
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            rate = rate_of(bench)
            if rate is not None and rate > 0:
                # Aggregates are named "BM_Foo/64_median"; run_name
                # carries the plain benchmark name.
                name = bench.get("run_name")
                if not name:
                    name = bench["name"].removesuffix("_median")
                medians[name] = rate
            continue
        rate = rate_of(bench)
        if rate is not None and rate > 0:
            samples.setdefault(bench["name"], []).append(rate)

    rates = {
        name: statistics.median(reps) for name, reps in samples.items()
    }
    rates.update(medians)
    return rates


def load_metrics(path, patterns=()):
    """Parse a bench JsonResult document into {metric name: value}.

    Selects the scalar "metrics" entries whose names match any of the
    fnmatch `patterns` (every metric when none are given). Like the
    rates loader, non-positive values are skipped — the gate's
    relative-drop rule needs a positive, higher-is-better baseline.

    Raises BenchFileError when the file is missing, not JSON, or not
    shaped like bench_util.hh's JsonResult output.
    """
    try:
        with open(path) as f:
            raw = f.read()
    except OSError as e:
        raise BenchFileError(f"cannot read benchmark file {path}: {e}")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as e:
        raise BenchFileError(f"malformed JSON in {path}: {e}")
    if (
        not isinstance(doc, dict)
        or "bench" not in doc
        or not isinstance(doc.get("metrics"), dict)
    ):
        raise BenchFileError(
            f"{path}: not a bench JsonResult document "
            f"(need 'bench' and a 'metrics' object)"
        )

    out = {}
    for name, value in doc["metrics"].items():
        if patterns and not any(
            fnmatch.fnmatchcase(name, p) for p in patterns
        ):
            continue
        if not isinstance(value, (int, float)):
            raise BenchFileError(
                f"{path}: non-numeric metric {name}: {value!r}"
            )
        if value > 0:
            out[name] = value
    return out


def compare(baseline, current, max_drop, what="commits/sec",
            value_fmt="{:>12.0f}"):
    """Gate logic on two {name: value} dicts. Returns (exit_code, lines).

    Higher is better for every gated value; `what` names the gated
    quantity in messages and `value_fmt` formats table cells (rates
    are whole numbers, metrics like host-efficiency need digits).
    """
    lines = []
    if not baseline:
        lines.append(f"error: no gateable {what} entries in baseline")
        return 1, lines

    failures = []
    missing = []
    width = max(len(n) for n in baseline)
    lines.append(
        f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta"
    )
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            missing.append(name)
            lines.append(
                f"{name:<{width}}  {value_fmt.format(base)}  "
                f"{'MISSING':>12}"
            )
            continue
        delta = (cur - base) / base
        flag = ""
        if delta < -max_drop:
            failures.append((name, delta))
            flag = "  << REGRESSION"
        lines.append(
            f"{name:<{width}}  {value_fmt.format(base)}  "
            f"{value_fmt.format(cur)}  {delta:+7.1%}{flag}"
        )

    new_names = sorted(set(current) - set(baseline))
    for name in new_names:
        lines.append(
            f"{name:<{width}}  {'(new)':>12}  "
            f"{value_fmt.format(current[name])}"
        )

    if missing:
        lines.append(
            f"\nerror: benchmarks missing from current run: {missing}"
        )
        return 1, lines
    if failures:
        drops = ", ".join(f"{n} ({d:+.1%})" for n, d in failures)
        lines.append(
            f"\nerror: {what} regressed more than "
            f"{max_drop:.0%} vs baseline: {drops}"
        )
        return 1, lines
    lines.append(f"\nok: no benchmark dropped more than {max_drop:.0%}")
    return 0, lines


def self_test():
    """Exercise loader failure modes and gate decisions in-process."""
    import os
    import tempfile

    checks = []

    def check(name, cond):
        checks.append((name, cond))
        print(f"  {'ok' if cond else 'FAIL'}: {name}")

    def expect_load_error(name, content):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as f:
            f.write(content)
            path = f.name
        try:
            try:
                load_rates(path)
            except BenchFileError:
                check(name, True)
            else:
                check(name, False)
        finally:
            os.unlink(path)

    # Loader: missing file must raise, not return {}.
    try:
        load_rates("/nonexistent/bench_regress_self_test.json")
    except BenchFileError:
        check("missing file raises", True)
    else:
        check("missing file raises", False)

    expect_load_error("malformed JSON raises", "{not json")
    expect_load_error("non-benchmark JSON raises", '{"foo": 1}')
    expect_load_error(
        "non-list benchmarks raises", '{"benchmarks": {"a": 1}}'
    )
    expect_load_error(
        "nameless entry raises", '{"benchmarks": [{"items_per_second": 5}]}'
    )
    expect_load_error(
        "non-numeric rate raises",
        '{"benchmarks": [{"name": "b", "items_per_second": "fast"}]}',
    )

    # Loader: a valid file parses, skipping non-median aggregates and
    # rate-less timing benches.
    valid = {
        "benchmarks": [
            {"name": "BM_A", "items_per_second": 100.0},
            {"name": "BM_A_mean", "run_type": "aggregate",
             "aggregate_name": "mean", "items_per_second": 100.0},
            {"name": "BM_Timing"},
        ]
    }
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as f:
        json.dump(valid, f)
        path = f.name
    try:
        rates = load_rates(path)
        check("valid file parses", rates == {"BM_A": 100.0})
    finally:
        os.unlink(path)

    # Loader: repetition entries collapse to their median, and a
    # google-benchmark median aggregate wins over the computed one.
    reps = {
        "benchmarks": [
            {"name": "BM_R", "items_per_second": 80.0},
            {"name": "BM_R", "items_per_second": 120.0},
            {"name": "BM_R", "items_per_second": 100.0},
            {"name": "BM_S", "items_per_second": 10.0},
            {"name": "BM_S", "items_per_second": 90.0},
            {"name": "BM_S_median", "run_type": "aggregate",
             "run_name": "BM_S", "aggregate_name": "median",
             "items_per_second": 42.0},
        ]
    }
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as f:
        json.dump(reps, f)
        path = f.name
    try:
        rates = load_rates(path)
        check(
            "repetitions gate on the median",
            rates == {"BM_R": 100.0, "BM_S": 42.0},
        )
    finally:
        os.unlink(path)

    # Metrics-mode loader: JsonResult documents, fnmatch selection,
    # and the same hard-error behaviour on files that cannot be
    # trusted as gate input.
    metrics_doc = {
        "bench": "fleet_scaling",
        "meta": {"budget_sec": 2.0},
        "metrics": {
            "shards-8-host-efficiency": 0.93,
            "shards-4-host-efficiency": 0.97,
            "shards-8-host-sec": 12.5,
            "shards-8-idle": 0.0,
        },
        "series": [],
    }
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as f:
        json.dump(metrics_doc, f)
        path = f.name
    try:
        vals = load_metrics(path)
        check(
            "metrics file parses (non-positive skipped)",
            vals
            == {
                "shards-8-host-efficiency": 0.93,
                "shards-4-host-efficiency": 0.97,
                "shards-8-host-sec": 12.5,
            },
        )
        vals = load_metrics(path, ["*-host-efficiency"])
        check(
            "metric glob selects subset",
            vals
            == {
                "shards-8-host-efficiency": 0.93,
                "shards-4-host-efficiency": 0.97,
            },
        )
        vals = load_metrics(path, ["shards-8-host-efficiency"])
        check(
            "exact metric name selects one",
            vals == {"shards-8-host-efficiency": 0.93},
        )
    finally:
        os.unlink(path)

    def expect_metrics_error(name, content):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as f:
            f.write(content)
            path = f.name
        try:
            try:
                load_metrics(path)
            except BenchFileError:
                check(name, True)
            else:
                check(name, False)
        finally:
            os.unlink(path)

    expect_metrics_error(
        "google-benchmark file rejected by metrics loader",
        '{"benchmarks": []}',
    )
    expect_metrics_error(
        "non-object metrics raises",
        '{"bench": "x", "metrics": [1, 2]}',
    )
    expect_metrics_error(
        "non-numeric metric raises",
        '{"bench": "x", "metrics": {"m": "fast"}}',
    )

    # Metrics gate: the fractional host-efficiency values survive the
    # same drop rule (a 15% efficiency drop at a 10% gate fails).
    code, _ = compare(
        {"shards-8-host-efficiency": 0.95},
        {"shards-8-host-efficiency": 0.90},
        0.10,
        what="host-efficiency",
        value_fmt="{:>12.4g}",
    )
    check("5% efficiency drop passes at 10% gate", code == 0)
    code, _ = compare(
        {"shards-8-host-efficiency": 0.95},
        {"shards-8-host-efficiency": 0.80},
        0.10,
        what="host-efficiency",
        value_fmt="{:>12.4g}",
    )
    check("16% efficiency drop fails at 10% gate", code == 1)

    # Gate decisions.
    code, _ = compare({"BM_A": 100.0}, {"BM_A": 95.0}, 0.10)
    check("5% drop passes at 10% gate", code == 0)
    code, _ = compare({"BM_A": 100.0}, {"BM_A": 85.0}, 0.10)
    check("15% drop fails at 10% gate", code == 1)
    code, _ = compare({"BM_A": 100.0}, {}, 0.10)
    check("missing benchmark fails", code == 1)
    code, _ = compare({}, {"BM_A": 100.0}, 0.10)
    check("empty baseline fails", code == 1)
    code, _ = compare(
        {"BM_A": 100.0}, {"BM_A": 100.0, "BM_New": 50.0}, 0.10
    )
    check("new benchmark is ungated", code == 0)

    failed = [n for n, ok in checks if not ok]
    if failed:
        print(f"\nself-test FAILED: {failed}")
        return 1
    print(f"\nself-test ok: {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.10,
        help="maximum tolerated relative commits/sec drop (default 0.10)",
    )
    parser.add_argument(
        "--mode",
        choices=["rates", "metrics"],
        default="rates",
        help="input format: google-benchmark items_per_second (rates, "
        "default) or bench JsonResult scalar metrics (metrics)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="GLOB",
        help="metrics mode: gate only metrics whose name matches this "
        "fnmatch pattern (repeatable; default: every metric)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in checks of the loader and gate logic",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("BASELINE and CURRENT are required (or --self-test)")
    if args.metric and args.mode != "metrics":
        parser.error("--metric requires --mode metrics")

    try:
        if args.mode == "metrics":
            baseline = load_metrics(args.baseline, args.metric)
            current = load_metrics(args.current, args.metric)
        else:
            baseline = load_rates(args.baseline)
            current = load_rates(args.current)
    except BenchFileError as e:
        print(f"error: {e}")
        return 1

    if args.mode == "metrics":
        code, lines = compare(baseline, current, args.max_drop,
                              what="metric", value_fmt="{:>12.4g}")
    else:
        code, lines = compare(baseline, current, args.max_drop)
    print("\n".join(lines))
    return code


if __name__ == "__main__":
    sys.exit(main())
