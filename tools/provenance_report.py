#!/usr/bin/env python3
"""Analyze a TurboFuzz "turbofuzz.provenance.v1" report.

Input is the JSON file written by `--provenance-out` (see
docs/provenance.md): full first-hit attribution for every coverage
point the fleet discovered, the never-hit target list, per-operator
unique-coverage counts, the corpus lineage depth histogram, and
per-shard forensics rings.

Default mode prints the human summary:

  - top mutation operators ranked by unique coverage (points whose
    *first* hit is attributed to that operator),
  - the lineage depth histogram of the resident corpus,
  - plateau detection: windows of `--plateau-window` simulated
    seconds (default: one tenth of the run) with zero new coverage,
    plus the terminal plateau age,
  - the never-hit table per instrumented module.

`--check` mode is the CI gate: validates the schema tag and the
structural invariants, and requires a non-empty never-hit target
list (a fleet smoke that saturates coverage means the
instrumentation is too small to exercise this report at all). Exits
non-zero on malformed or empty input, naming the violation.

Usage: provenance_report.py REPORT.json [--check]
       provenance_report.py REPORT.json --plateau-window 5.0
"""

import argparse
import json
import sys

OPS = ("direct", "generate", "delete", "retain")
SPACES = ("mux", "csr", "edges")


def fail(msg):
    print(f"error: {msg}")
    sys.exit(1)


def load_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read report {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"malformed JSON in {path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: report is not a JSON object")
    if doc.get("schema") != "turbofuzz.provenance.v1":
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def require(doc, path, key, kind):
    value = doc.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        fail(f"{path}: missing/bad {key!r}")
    return value


def validate(doc, path):
    """Structural validation shared by both modes; returns the parsed
    sections the summary needs."""
    shards = require(doc, path, "shards", int)
    require(doc, path, "epochs", int)
    t_sim_end = require(doc, path, "t_sim_end", (int, float))
    first_hits = require(doc, path, "first_hits_recorded", int)

    hits = require(doc, path, "time_to_hit", list)
    if len(hits) != first_hits:
        fail(
            f"{path}: first_hits_recorded={first_hits} but "
            f"time_to_hit has {len(hits)} entries"
        )
    for i, hit in enumerate(hits):
        if not isinstance(hit, dict):
            fail(f"{path}: time_to_hit[{i}] is not an object")
        if hit.get("space") not in SPACES:
            fail(
                f"{path}: time_to_hit[{i}] bad space "
                f"{hit.get('space')!r}"
            )
        if hit.get("op") not in OPS:
            fail(f"{path}: time_to_hit[{i}] bad op {hit.get('op')!r}")
        for key in ("t_sim", "shard", "iteration", "seed"):
            value = hit.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"{path}: time_to_hit[{i}] missing/bad {key!r}")
        if hit["shard"] >= shards:
            fail(
                f"{path}: time_to_hit[{i}] shard {hit['shard']} out "
                f"of range"
            )
        if hit["t_sim"] > t_sim_end + 1e-9:
            fail(
                f"{path}: time_to_hit[{i}] t_sim {hit['t_sim']} past "
                f"t_sim_end {t_sim_end}"
            )

    never = require(doc, path, "never_hit", dict)
    mux = never.get("mux")
    if not isinstance(mux, list):
        fail(f"{path}: never_hit.mux is not a list")
    for i, mod in enumerate(mux):
        if not isinstance(mod, dict):
            fail(f"{path}: never_hit.mux[{i}] is not an object")
        for key in ("points", "hit", "never"):
            value = mod.get(key)
            if not isinstance(value, int) or value < 0:
                fail(
                    f"{path}: never_hit.mux[{i}] missing/bad {key!r}"
                )
        if mod["hit"] + mod["never"] != mod["points"]:
            fail(
                f"{path}: never_hit.mux[{i}] hit+never != points "
                f"({mod['hit']}+{mod['never']} != {mod['points']})"
            )

    operators = require(doc, path, "operators", list)
    op_total = 0
    for i, entry in enumerate(operators):
        if not isinstance(entry, dict) or entry.get("op") not in OPS:
            fail(f"{path}: operators[{i}] malformed")
        count = entry.get("first_hits")
        if not isinstance(count, int) or count < 0:
            fail(f"{path}: operators[{i}] missing/bad 'first_hits'")
        op_total += count
    if op_total != first_hits:
        fail(
            f"{path}: operator first_hits sum to {op_total}, "
            f"expected {first_hits}"
        )

    histogram = require(doc, path, "lineage_depth_histogram", list)
    for i, bucket in enumerate(histogram):
        if (
            not isinstance(bucket, dict)
            or not isinstance(bucket.get("depth"), int)
            or not isinstance(bucket.get("seeds"), int)
        ):
            fail(f"{path}: lineage_depth_histogram[{i}] malformed")

    detail = require(doc, path, "shards_detail", list)
    if len(detail) != shards:
        fail(
            f"{path}: shards_detail has {len(detail)} rows for "
            f"{shards} shards"
        )
    return hits, mux, operators, histogram, detail


def detect_plateaus(hits, t_sim_end, window):
    """Slide a window of `window` simulated seconds over the run and
    report every maximal stretch with zero new coverage, plus the
    terminal plateau age."""
    times = sorted(h["t_sim"] for h in hits)
    plateaus = []
    prev = 0.0
    for t in times + [t_sim_end]:
        if t - prev >= window:
            plateaus.append((prev, t))
        prev = max(prev, t)
    terminal_age = t_sim_end - times[-1] if times else t_sim_end
    return plateaus, terminal_age


def summarize(doc, path, window):
    hits, mux, operators, histogram, detail = validate(doc, path)
    t_sim_end = doc["t_sim_end"]
    if window is None:
        window = max(t_sim_end / 10.0, 1e-9)

    print(
        f"{path}: {doc['shards']} shards, {doc['epochs']} epochs, "
        f"{t_sim_end:.2f}s simulated, "
        f"{doc['first_hits_recorded']} first hits"
    )

    print("\ntop operators by unique coverage:")
    ranked = sorted(
        operators, key=lambda e: e["first_hits"], reverse=True
    )
    total = max(doc["first_hits_recorded"], 1)
    for entry in ranked:
        share = entry["first_hits"] / total
        print(
            f"  {entry['op']:<9} {entry['first_hits']:>8} "
            f"({share:.1%})"
        )

    print("\nlineage depth histogram (resident corpus):")
    if not histogram:
        print("  (empty corpus)")
    for bucket in histogram:
        bar = "#" * min(bucket["seeds"], 60)
        print(f"  depth {bucket['depth']:>3}: {bucket['seeds']:>6} {bar}")

    plateaus, terminal_age = detect_plateaus(hits, t_sim_end, window)
    print(f"\nplateaus (windows >= {window:.2f}s with no new coverage):")
    if not plateaus:
        print("  none")
    for start, end in plateaus:
        print(f"  {start:>8.2f}s .. {end:>8.2f}s ({end - start:.2f}s)")
    print(f"terminal plateau age: {terminal_age:.2f}s")

    print("\nnever-hit mux points per module:")
    for mod in mux:
        name = mod.get("module", "?")
        examples = ",".join(str(e) for e in mod.get("examples", []))
        suffix = f"  e.g. [{examples}]" if examples else ""
        print(
            f"  {name:<24} {mod['hit']:>5}/{mod['points']:<5} hit, "
            f"{mod['never']:>5} never{suffix}"
        )
    return 0


def check(doc, path):
    hits, mux, operators, histogram, detail = validate(doc, path)
    if doc["first_hits_recorded"] == 0:
        fail(f"{path}: no first hits recorded — empty campaign?")
    never_total = sum(mod["never"] for mod in mux)
    if never_total == 0:
        fail(
            f"{path}: never-hit list is empty — instrumentation too "
            f"small to exercise the report"
        )
    print(
        f"{path}: OK — {doc['first_hits_recorded']} first hits, "
        f"{never_total} never-hit mux points, "
        f"{len(operators)} operators, "
        f"{len(histogram)} lineage depth buckets"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="provenance report JSON file")
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: validate structure and require a non-empty "
        "never-hit target list",
    )
    parser.add_argument(
        "--plateau-window",
        type=float,
        default=None,
        metavar="SEC",
        help="plateau window in simulated seconds (default: "
        "t_sim_end / 10)",
    )
    args = parser.parse_args()

    doc = load_report(args.file)
    if args.check:
        return check(doc, args.file)
    return summarize(doc, args.file, args.plateau_window)


if __name__ == "__main__":
    sys.exit(main())
