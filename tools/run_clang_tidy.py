#!/usr/bin/env python3
"""Parallel clang-tidy driver for the TurboFuzz tree.

Runs the curated .clang-tidy check set (the repo root config) over
every first-party translation unit in a compile_commands.json and
fails on any finding — WarningsAsErrors promotes the whole set, so
this is a gate, not a report.

The container/CI split is explicit: without clang-tidy on PATH the
script *skips* (exit 0) so developer machines without LLVM still
build and test; CI passes --require so a missing binary there is a
hard configuration error (exit 2), never a silently green gate.

Usage:
    tools/run_clang_tidy.py -p build [--require] [-j N] [paths...]
Paths filter which sources run (default: everything under src/).
Exit codes: 0 clean/skipped, 1 findings, 2 setup error.
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

CLANG_TIDY_NAMES = ["clang-tidy"] + [
    "clang-tidy-%d" % v for v in range(21, 13, -1)
]


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CLANG_TIDY_NAMES:
        if shutil.which(name):
            return name
    return None


def load_sources(build_dir, filters):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as fh:
            db = json.load(fh)
    except OSError as e:
        print("run_clang_tidy: cannot read %s: %s" % (db_path, e),
              file=sys.stderr)
        return None
    sources = []
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        rel_filters = filters or [os.sep + "src" + os.sep]
        if any(os.path.abspath(f) == path or f in path
               for f in rel_filters):
            sources.append(path)
    return sorted(set(sources))


def run_one(args):
    tidy, build_dir, quiet, source = args
    cmd = [tidy, "-p", build_dir, "--quiet", source]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    # clang-tidy exits nonzero on WarningsAsErrors findings; stderr
    # carries the "N warnings treated as errors" banner.
    interesting = proc.returncode != 0 or "warning:" in proc.stdout \
        or "error:" in proc.stdout
    out = (proc.stdout + ("" if quiet else proc.stderr)).strip()
    return source, proc.returncode, out if interesting else ""


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="run_clang_tidy", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="substring filters for sources "
                         "(default: /src/)")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="directory holding compile_commands.json")
    ap.add_argument("-j", "--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count() - 1))
    ap.add_argument("--clang-tidy", default=None,
                    help="explicit clang-tidy binary")
    ap.add_argument("--require", action="store_true",
                    help="fail (exit 2) when clang-tidy is missing "
                         "instead of skipping — CI mode")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        msg = "run_clang_tidy: no clang-tidy binary found"
        if args.require:
            print(msg + " (--require: this is an error)",
                  file=sys.stderr)
            return 2
        print(msg + "; skipping (install clang-tidy or pass "
                    "--clang-tidy)")
        return 0

    sources = load_sources(args.build_dir, args.paths)
    if sources is None:
        return 2
    if not sources:
        print("run_clang_tidy: no sources matched", file=sys.stderr)
        return 2

    if not args.quiet:
        print("run_clang_tidy: %s over %d translation unit(s), "
              "-j%d" % (tidy, len(sources), args.jobs))

    failures = 0
    work = [(tidy, args.build_dir, args.quiet, s) for s in sources]
    with multiprocessing.Pool(args.jobs) as pool:
        for source, rc, out in pool.imap_unordered(run_one, work):
            if out:
                print("--- %s" % source)
                print(out)
            if rc != 0:
                failures += 1
    print("run_clang_tidy: %d/%d translation unit(s) clean"
          % (len(sources) - failures, len(sources)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
