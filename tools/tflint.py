#!/usr/bin/env python3
"""tflint — TurboFuzz project-invariant linter.

Machine-checks the repo invariants that ordinary compilers cannot see
(docs/static_analysis.md has the full rule catalogue):

  determinism   No wall-clock or ambient-randomness reads outside the
                sanctioned wrappers (telemetry::WallClock/nowNs,
                common::rng), and no iteration over unordered
                containers in serialization/merge paths — unordered
                iteration order leaking into serialized state silently
                breaks resume-equals-uninterrupted replay.
  hot-path      Functions annotated `// tflint: hot-path` must not
                allocate from the heap, touch std::map/unordered_map,
                or acquire locks (guards the PR 8 arena/decode-cache
                fast path).
  wire-safety   Every function that *constructs* a soc::SnapshotReader
                (i.e. a trust boundary where raw bytes enter) must
                either catch SnapshotFormatError in-function or
                length-validate via reader.remaining() before naked
                get* chains. Mid-chain functions that only receive a
                `SnapshotReader &` are inside an already-guarded
                boundary and exempt.

Engines: with python-libclang installed the AST supplies exact
function extents (`--engine clang`); without it a token-level scanner
(comment/string-aware brace matcher) is used (`--engine tokens`).
`--engine auto` (default) prefers clang and silently falls back.
Zero build-time dependencies either way.

Suppression syntax (same line or the line directly above a finding):
    // tflint: allow(rule) -- reason
    // tflint: allow(rule1, rule2)
    // tflint: allow-file(rule)        (anywhere in the file)
Annotation syntax (line(s) directly above a function, or its
signature line):
    // tflint: hot-path

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = ("determinism", "hot-path", "wire-safety")

# Files where the determinism wall-clock tokens are the sanctioned
# implementation itself (relative-path substrings).
DETERMINISM_ALLOWED_FILES = (
    "telemetry/clock.hh",
    "common/rng.",
    "common/lfsr.",
)

# (pattern, message) — matched against scrubbed text anywhere in a
# non-allowlisted file.
DETERMINISM_TOKENS = [
    (re.compile(r"\bstd\s*::\s*chrono\b"),
     "wall-clock read (std::chrono) outside telemetry::WallClock"),
    (re.compile(r"\b(?:std\s*::\s*)?random_device\b"),
     "ambient randomness (random_device) outside common::rng"),
    (re.compile(r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
                r"default_random_engine|ranlux\w+|knuth_b)\b"),
     "ambient randomness (<random> engine) outside common::rng"),
    (re.compile(r"\bs?rand\s*\("),
     "ambient randomness (rand/srand) outside common::rng"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock read (time()) outside telemetry::WallClock"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\s*\("),
     "wall-clock read outside telemetry::WallClock"),
    # Lookbehind rejects member access (.clock()/->clock()),
    # qualification (::clock) and declarations (SimClock &clock()).
    (re.compile(r"(?<![\w.>:&])clock\s*\(\s*\)"),
     "wall-clock read (clock()) outside telemetry::WallClock"),
]

# Function names that constitute a serialization/merge path for the
# unordered-iteration check.
def is_serialization_path(name):
    low = name.lower()
    return ("serialize" in low or "savestate" in low
            or low in ("merge", "mergefrom", "mergeinto"))

HOT_TOKENS = [
    (re.compile(r"\bnew\b"), "heap allocation (new)"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("),
     "heap allocation (malloc family)"),
    (re.compile(r"\bmake_(?:unique|shared)\b"),
     "heap allocation (make_unique/make_shared)"),
    (re.compile(r"\bstd\s*::\s*map\s*<"),
     "std::map in hot path (node allocation + pointer chasing)"),
    (re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<"),
     "hash container in hot path"),
    (re.compile(r"\b(?:lock_guard|unique_lock|scoped_lock|"
                r"shared_lock)\b"),
     "lock acquisition in hot path"),
    (re.compile(r"(?:\.|->)\s*lock\s*\(\s*\)"),
     "lock acquisition in hot path"),
    (re.compile(r"\bpthread_mutex_lock\b"),
     "lock acquisition in hot path"),
]

# Map-typed member/local access that constitutes a lookup.
MAP_LOOKUP_RE = (r"\b({vars})\s*(?:\.|->)\s*"
                 r"(?:find|at|count|emplace|insert|try_emplace|"
                 r"operator\s*\[\s*\])\s*\(")
MAP_INDEX_RE = r"\b({vars})\s*\["

CONTAINER_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(unordered_(?:map|set|multimap|multiset)|map|"
    r"multimap)\s*<")

READER_CTOR_RE = re.compile(
    r"\bSnapshotReader\s+([A-Za-z_]\w*)\s*[({]")

ALLOW_RE = re.compile(r"tflint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"tflint:\s*allow-file\(([^)]*)\)")
HOT_PATH_RE = re.compile(r"tflint:\s*hot-path\b")

CONTROL_KEYWORDS = ("if", "for", "while", "switch", "catch", "do",
                    "return", "sizeof", "alignof", "decltype")
NONFUNC_HEADER = ("namespace", "class ", "struct ", "enum ", "union ",
                  "extern \"C\"")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def scrub(text):
    """Blank comments, string and char literals (preserving offsets
    and newlines) and collect per-line comment text for directives.

    Returns (scrubbed, comments) where comments maps 1-based line
    number -> concatenated comment text on that line.
    """
    out = list(text)
    comments = {}
    i, n = 0, len(text)
    line = 1

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    def note(ln, s):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            note(line, text[i:j])
            blank(i, j)
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            start_line = line
            seg = text[i:j]
            for off, part in enumerate(seg.split("\n")):
                note(start_line + off, part)
            line += seg.count("\n")
            blank(i, j)
            i = j
        elif c == '"':
            # Raw strings: R"delim( ... )delim"
            if i >= 1 and text[i - 1] == "R" and \
                    (i < 2 or not (text[i - 2].isalnum()
                                   or text[i - 2] == "_")):
                m = re.match(r'"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    endtok = ")" + m.group(1) + '"'
                    j = text.find(endtok, i)
                    j = n if j < 0 else j + len(endtok)
                    line += text.count("\n", i, j)
                    blank(i, j)
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    line += 1
                j += 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out), comments


class Function:
    __slots__ = ("name", "qualified", "header", "body", "start_line",
                 "end_line", "hot")

    def __init__(self, name, qualified, header, body, start_line,
                 end_line):
        self.name = name
        self.qualified = qualified
        self.header = header
        self.body = body
        self.start_line = start_line
        self.end_line = end_line
        self.hot = False


def _header_function_name(header):
    """Identifier (and Class::qualified form) before the parameter
    list of a function header, or None if this is not a function."""
    h = header.strip()
    if not h or h.endswith("="):
        return None
    for kw in NONFUNC_HEADER:
        if h.startswith(kw) or h == kw.strip():
            return None
    # Strip template prologue.
    h = re.sub(r"^template\s*<[^{}]*?>\s*", "", h, count=1)
    paren = h.find("(")
    if paren <= 0:
        return None
    pre = h[:paren].rstrip()
    m = re.search(r"((?:[A-Za-z_]\w*\s*::\s*)*)(~?[A-Za-z_]\w*)$", pre)
    if not m:
        return None
    name = m.group(2)
    if name in CONTROL_KEYWORDS:
        return None
    qualified = (m.group(1) or "") + name
    return name, re.sub(r"\s+", "", qualified)


def extract_functions(scrubbed):
    """Brace-matching function extractor over scrubbed text.

    Finds bodies whose header looks like a function signature; a
    function-try-block's trailing catch clauses are folded into the
    function extent.
    """
    funcs = []
    n = len(scrubbed)
    i = 0
    header_start = 0
    depth = 0
    stack = []  # (kind, header_start_offset, func_index_or_None)
    pending_catch_for = None  # function index awaiting catch blocks

    def line_of(off):
        return scrubbed.count("\n", 0, off) + 1

    while i < n:
        c = scrubbed[i]
        if c == "{":
            header = scrubbed[header_start:i]
            kind = "other"
            func_idx = None
            stripped = header.strip()
            named = _header_function_name(header)
            is_try = bool(re.search(r"\)\s*(?:const\s*)?(?:noexcept\s*"
                                    r"(?:\([^()]*\)\s*)?)?try\s*$",
                                    stripped)) or stripped == "try"
            looks_like_sig = bool(
                re.search(r"\)\s*(?:const|noexcept|override|final|"
                          r"mutable|try|->\s*[\w:<>,\s&*\[\]]+|\s)*$",
                          stripped))
            if depth_ok(stack) and named and looks_like_sig \
                    and "(" in stripped:
                name, qualified = named
                funcs.append(Function(name, qualified, stripped, "",
                                      line_of(header_start),
                                      line_of(i)))
                func_idx = len(funcs) - 1
                kind = "func-try" if is_try else "func"
            elif stripped.startswith("catch") and \
                    pending_catch_for is not None:
                kind = "catch"
                func_idx = pending_catch_for
                # The exception type lives in the catch *header*;
                # fold it into the function text so guard checks
                # (e.g. wire-safety's SnapshotFormatError) see it.
                funcs[func_idx].body += stripped + "\n"
            stack.append((kind, i + 1, func_idx))
            depth += 1
            header_start = i + 1
            i += 1
        elif c == "}":
            if stack:
                kind, body_start, func_idx = stack.pop()
                depth -= 1
                if func_idx is not None and kind in ("func",
                                                     "func-try",
                                                     "catch"):
                    f = funcs[func_idx]
                    f.body += scrubbed[body_start:i] + "\n"
                    f.end_line = max(f.end_line, line_of(i))
                    pending_catch_for = (func_idx
                                         if kind != "func" else None)
                elif kind == "other":
                    pending_catch_for = None
            header_start = i + 1
            i += 1
        elif c in ";":
            header_start = i + 1
            pending_catch_for = None
            i += 1
        else:
            i += 1
    return funcs


def depth_ok(stack):
    """Function definitions live at namespace/class scope: every
    enclosing brace must be a non-function block (namespace, class,
    extern) — not inside another function body."""
    return all(kind == "other" for kind, _, _ in stack)


def collect_container_vars(scrubbed):
    """Identifiers declared with (unordered) map/set types in this
    text. Returns (unordered_vars, map_vars)."""
    unordered, maps = set(), set()
    for m in CONTAINER_DECL_RE.finditer(scrubbed):
        kind = m.group(1)
        # Skip the balanced template argument list.
        j = m.end()
        depth = 1
        n = len(scrubbed)
        while j < n and depth > 0:
            if scrubbed[j] == "<":
                depth += 1
            elif scrubbed[j] == ">":
                depth -= 1
            j += 1
        mm = re.match(r"\s*(?:&\s*)?([A-Za-z_]\w*)\s*[;{=,()\[]",
                      scrubbed[j:j + 160])
        if not mm:
            continue
        var = mm.group(1)
        if var in ("const", "static", "mutable"):
            continue
        maps.add(var)
        if kind.startswith("unordered"):
            unordered.add(var)
    return unordered, maps


def parse_directives(comments):
    """-> (allow: {line: set(rules)}, allow_file: set(rules),
           hot_lines: sorted list of directive lines)"""
    allow, allow_file, hot_lines = {}, set(), []
    for line, text in comments.items():
        for m in ALLOW_FILE_RE.finditer(text):
            allow_file.update(r.strip() for r in m.group(1).split(","))
        for m in ALLOW_RE.finditer(text):
            allow.setdefault(line, set()).update(
                r.strip() for r in m.group(1).split(","))
        if HOT_PATH_RE.search(text):
            hot_lines.append(line)
    return allow, sorted(hot_lines)[::-1], allow_file


def attach_hot_annotations(funcs, hot_lines):
    """A `// tflint: hot-path` comment marks the function whose
    extent contains the directive line. The extractor's header region
    stretches back to the previous statement, so the conventional
    spot — the line(s) directly above the signature — is inside the
    annotated function's extent."""
    funcs_by_start = sorted(funcs, key=lambda f: f.start_line)
    for ln in hot_lines:
        for f in funcs_by_start:
            if f.start_line <= ln <= f.end_line:
                f.hot = True
                break


def _line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def check_determinism(path, rel, scrubbed, funcs, unordered_vars,
                      findings):
    if not any(sub in rel for sub in DETERMINISM_ALLOWED_FILES):
        for pat, msg in DETERMINISM_TOKENS:
            for m in pat.finditer(scrubbed):
                findings.append(Finding(path, _line_of(scrubbed,
                                                       m.start()),
                                        "determinism", msg))
    if not unordered_vars:
        return
    var_alt = "|".join(re.escape(v) for v in sorted(unordered_vars))
    range_for = re.compile(
        r"for\s*\([^();]*:\s*[\w.\->\s]*\b(%s)\s*\)" % var_alt)
    begin_call = re.compile(
        r"\b(%s)\s*(?:\.|->)\s*c?begin\s*\(" % var_alt)
    for f in funcs:
        if not is_serialization_path(f.name):
            continue
        base = f.start_line
        body_with_header = f.header + "\n" + f.body
        for pat in (range_for, begin_call):
            for m in pat.finditer(body_with_header):
                line = base + body_with_header.count("\n", 0,
                                                     m.start())
                findings.append(Finding(
                    path, line, "determinism",
                    "iteration over unordered container '%s' in "
                    "serialization/merge path %s() — unordered order "
                    "must not reach serialized or merged state"
                    % (m.group(1), f.qualified)))


def check_hot_path(path, scrubbed, funcs, map_vars, findings):
    lookup_pats = []
    if map_vars:
        var_alt = "|".join(re.escape(v) for v in sorted(map_vars))
        lookup_pats = [
            (re.compile(MAP_LOOKUP_RE.format(vars=var_alt)),
             "map lookup in hot path"),
            (re.compile(MAP_INDEX_RE.format(vars=var_alt)),
             "map indexing in hot path"),
        ]
    for f in funcs:
        if not f.hot:
            continue
        base = f.start_line
        text = f.header + "\n" + f.body
        for pat, msg in HOT_TOKENS + lookup_pats:
            for m in pat.finditer(text):
                line = base + text.count("\n", 0, m.start())
                findings.append(Finding(
                    path, line, "hot-path",
                    "%s (function %s() is marked tflint: hot-path)"
                    % (msg, f.qualified)))


def check_wire_safety(path, funcs, findings):
    for f in funcs:
        m = READER_CTOR_RE.search(f.body)
        if not m:
            continue
        guarded = (re.search(r"catch\s*\(\s*(?:const\s+)?[\w:]*"
                             r"SnapshotFormatError", f.body)
                   or re.search(r"\bremaining\s*\(\s*\)", f.body))
        if not guarded:
            line = f.start_line + (f.header + "\n"
                                   + f.body).count(
                                       "\n", 0,
                                       len(f.header) + 1 + m.start())
            findings.append(Finding(
                path, line, "wire-safety",
                "%s() constructs a SnapshotReader (trust boundary) "
                "but neither catches SnapshotFormatError in-function "
                "nor length-validates via remaining() — route "
                "untrusted bytes through a tryDeserialize-style "
                "typed-error wrapper" % f.qualified))


def sibling_header_text(path):
    """Scrubbed text of the paired header (foo.cc -> foo.hh), so
    member containers declared in the header are known when linting
    the .cc."""
    root, ext = os.path.splitext(path)
    if ext not in (".cc", ".cpp", ".cxx"):
        return ""
    for hext in (".hh", ".h", ".hpp"):
        hp = root + hext
        if os.path.exists(hp):
            try:
                with open(hp, encoding="utf-8",
                          errors="replace") as fh:
                    return scrub(fh.read())[0]
            except OSError:
                return ""
    return ""


# --------------------------------------------------------------------
# Optional libclang engine: replaces the token-level function
# extractor with exact AST extents. Token rules are unchanged.
# --------------------------------------------------------------------

def _clang_functions(path, text, scrubbed):
    import clang.cindex as ci  # noqa: deferred import by design
    index = ci.Index.create()
    tu = index.parse(path, args=["-std=c++20", "-Isrc"],
                     unsaved_files=[(path, text)],
                     options=ci.TranslationUnit.PARSE_INCOMPLETE)
    funcs = []
    decl_kinds = (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                  ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                  ci.CursorKind.FUNCTION_TEMPLATE)

    def walk(cur):
        for ch in cur.get_children():
            if ch.location.file and ch.location.file.name != path:
                continue
            if ch.kind in decl_kinds and ch.is_definition():
                ext = ch.extent
                start = ext.start.line
                end = ext.end.line
                lines = scrubbed.split("\n")[start - 1:end]
                body = "\n".join(lines)
                brace = body.find("{")
                header = body[:brace] if brace >= 0 else body
                f = Function(ch.spelling, ch.spelling,
                             header.strip(), body, start, end)
                funcs.append(f)
            walk(ch)

    walk(tu.cursor)
    return funcs


def lint_text(path, rel, text, rules, engine="tokens",
              extra_decl_text=""):
    scrubbed, comments = scrub(text)
    funcs = None
    if engine == "clang":
        try:
            funcs = _clang_functions(path, text, scrubbed)
        except Exception:
            funcs = None
    if funcs is None:
        funcs = extract_functions(scrubbed)
    allow, hot_lines, allow_file = parse_directives(comments)
    attach_hot_annotations(funcs, hot_lines)
    unordered_vars, map_vars = collect_container_vars(
        scrubbed + "\n" + extra_decl_text)

    findings = []
    if "determinism" in rules:
        check_determinism(path, rel, scrubbed, funcs, unordered_vars,
                          findings)
    if "hot-path" in rules:
        check_hot_path(path, scrubbed, funcs, map_vars, findings)
    if "wire-safety" in rules:
        check_wire_safety(path, funcs, findings)

    # A finding on line L is suppressed by an allow directive on L
    # itself, or on the comment block directly above it (directives
    # carry through contiguous comment-only lines, so multi-line
    # justifications work).
    scrubbed_lines = scrubbed.split("\n")

    def comment_only(ln):
        return (ln in comments and 1 <= ln <= len(scrubbed_lines)
                and not scrubbed_lines[ln - 1].strip())

    def suppressed(f):
        if f.rule in allow.get(f.line, ()):
            return True
        ln = f.line - 1
        while ln >= 1 and comment_only(ln):
            if f.rule in allow.get(ln, ()):
                return True
            ln -= 1
        return False

    kept = []
    for f in findings:
        if f.rule in allow_file:
            continue
        if suppressed(f):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.line, f.rule))
    return kept


def lint_file(path, rel, rules, engine):
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as e:
        print("tflint: cannot read %s: %s" % (path, e),
              file=sys.stderr)
        return None
    return lint_text(path, rel, text, rules, engine,
                     sibling_header_text(path))


CXX_EXTS = (".cc", ".cpp", ".cxx", ".hh", ".h", ".hpp")


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTS):
                        files.append(os.path.join(dirpath, fn))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print("tflint: no such path: %s" % p, file=sys.stderr)
            return None
    return sorted(set(files))


# --------------------------------------------------------------------
# Self-test over the fixture corpus (tests/tools/tflint/fixtures).
# Each fixture declares its expected findings in header comments:
#     // tflint-fixture: expect <rule> <count>
# Rules not listed must produce zero findings; a fixture with no
# expect lines must be entirely clean.
# --------------------------------------------------------------------

FIXTURE_RE = re.compile(r"tflint-fixture:\s*expect\s+([\w-]+)\s+(\d+)")


def self_test(fixture_dir, engine, verbose=True):
    if not os.path.isdir(fixture_dir):
        print("tflint: fixture dir not found: %s" % fixture_dir,
              file=sys.stderr)
        return 2
    failures = 0
    count = 0
    for fn in sorted(os.listdir(fixture_dir)):
        if not fn.endswith(CXX_EXTS):
            continue
        path = os.path.join(fixture_dir, fn)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        expected = {rule: int(cnt)
                    for rule, cnt in FIXTURE_RE.findall(text)}
        for rule in expected:
            if rule not in RULES:
                print("FAIL %s: unknown rule '%s' in expectation"
                      % (fn, rule))
                failures += 1
        findings = lint_text(path, fn, text, set(RULES), engine)
        got = {}
        for f in findings:
            got[f.rule] = got.get(f.rule, 0) + 1
        ok = True
        for rule in RULES:
            want = expected.get(rule, 0)
            have = got.get(rule, 0)
            if want != have:
                ok = False
                print("FAIL %s: rule %s expected %d finding(s), "
                      "got %d" % (fn, rule, want, have))
                for f in findings:
                    if f.rule == rule:
                        print("    " + str(f))
        count += 1
        if not ok:
            failures += 1
        elif verbose:
            print("ok   %s (%s)" % (fn,
                                    ", ".join("%s=%d" % kv
                                              for kv in
                                              sorted(expected.items()))
                                    or "clean"))
    if count == 0:
        print("tflint: no fixtures found in %s" % fixture_dir,
              file=sys.stderr)
        return 2
    print("tflint --self-test: %d fixture(s), %d failure(s)"
          % (count, failures))
    return 1 if failures else 0


def resolve_engine(requested):
    if requested == "tokens":
        return "tokens"
    try:
        import clang.cindex  # noqa: F401
        return "clang"
    except ImportError:
        if requested == "clang":
            print("tflint: --engine clang requested but "
                  "python-libclang is unavailable", file=sys.stderr)
            return None
        return "tokens"


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="tflint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint")
    ap.add_argument("--rules", default=",".join(RULES),
                    help="comma-separated rule subset (default: all)")
    ap.add_argument("--engine", default="auto",
                    choices=("auto", "tokens", "clang"))
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus under "
                         "tests/tools/tflint/fixtures")
    ap.add_argument("--fixture-dir", default=None,
                    help="override the self-test fixture directory")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    rules = set(r.strip() for r in args.rules.split(",") if r.strip())
    bad = rules - set(RULES)
    if bad:
        print("tflint: unknown rule(s): %s" % ", ".join(sorted(bad)),
              file=sys.stderr)
        return 2

    engine = resolve_engine(args.engine)
    if engine is None:
        return 2

    repo_root = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))
    if args.self_test:
        fixture_dir = args.fixture_dir or os.path.join(
            repo_root, "tests", "tools", "tflint", "fixtures")
        return self_test(fixture_dir, engine,
                         verbose=not args.quiet)

    if not args.paths:
        ap.print_usage(sys.stderr)
        print("tflint: no paths given (and no --self-test)",
              file=sys.stderr)
        return 2

    files = gather_files(args.paths)
    if files is None:
        return 2

    total = 0
    for path in files:
        rel = os.path.relpath(path, repo_root) \
            if path.startswith(repo_root) else path
        findings = lint_file(path, rel.replace(os.sep, "/"), rules,
                             engine)
        if findings is None:
            return 2
        for f in findings:
            print(f)
        total += len(findings)
    if not args.quiet:
        print("tflint: %d file(s) scanned, %d finding(s)"
              % (len(files), total))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
