#!/usr/bin/env python3
"""Summarize and validate TurboFuzz telemetry artifacts.

Two modes:

Trace mode (default) — read a Chrome trace-event JSON file written by
`--trace-out` and print a per-stage time table: total time, span
count, and mean duration per span name, plus each engine stage's
share of the enclosing `engine.iteration` spans. With
`--check-coverage FRAC` the tool exits 1 unless the four engine
pipeline stages (engine.dut_batch, engine.ref_mirror,
engine.trace_diff, engine.fused_sweep) together cover at least FRAC
of the `engine.iteration` wall time — the acceptance check that the
stage spans actually account for where engine time goes.

JSONL mode (`--jsonl`) — validate a `--stats-file` emission: every
line must be a standalone JSON object with the
"turbofuzz.metrics.v1" schema tag, monotonically non-decreasing
t_sim/t_host/epoch, and a metrics object of numbers and histogram
objects. Lines from provenance-enabled runs additionally carry a
"provenance" object (first_hits / last_new_t_sim / plateau_sec, all
non-negative numbers with non-decreasing first_hits across lines);
it is validated when present. Fleet runs additionally emit the
epoch-barrier phase counters fleet.barrier.{merge_ns, reduce_ns,
exchange_ns, io_overlap_ns} (docs/fleet.md, "Epoch barrier
anatomy"): when any appears, all four must be present, numeric,
non-negative and non-decreasing across lines, and the final line's
breakdown is printed after validation. Exits 1 on any violation,
naming the line. Unknown schema tags fail loudly — this tool
validates exactly one format version and must not silently pass a
newer one.

Both modes treat missing/malformed input as a hard error — this tool
doubles as the CI artifact validator, and a validator that shrugs at
an empty file validates nothing.

Usage: trace_summary.py TRACE.json [--check-coverage 0.95]
       trace_summary.py --jsonl STATS.jsonl [--min-lines 1]
"""

import argparse
import json
import sys

ENGINE_STAGES = (
    "engine.dut_batch",
    "engine.ref_mirror",
    "engine.trace_diff",
    "engine.fused_sweep",
)


def fail(msg):
    print(f"error: {msg}")
    sys.exit(1)


def load_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read trace file {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"malformed JSON in {path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: not a Chrome trace (no 'traceEvents' key)")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' is not a list")
    return events


def validate_event(path, i, ev):
    if not isinstance(ev, dict):
        fail(f"{path}: traceEvents[{i}] is not an object")
    for key in ("name", "ph", "ts", "pid", "tid"):
        if key not in ev:
            fail(f"{path}: traceEvents[{i}] missing '{key}'")
    if ev["ph"] not in ("X", "i"):
        fail(f"{path}: traceEvents[{i}] unexpected phase {ev['ph']!r}")
    if ev["ph"] == "X" and "dur" not in ev:
        fail(f"{path}: traceEvents[{i}] complete event without 'dur'")
    if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
        fail(f"{path}: traceEvents[{i}] bad ts {ev['ts']!r}")
    if "dur" in ev and (
        not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0
    ):
        fail(f"{path}: traceEvents[{i}] bad dur {ev['dur']!r}")


def summarize_trace(path, check_coverage):
    events = load_trace(path)
    if not events:
        fail(f"{path}: trace contains no events")

    # name -> [total_us, count]
    spans = {}
    instants = {}
    for i, ev in enumerate(events):
        validate_event(path, i, ev)
        if ev["ph"] == "i":
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1
            continue
        total, count = spans.get(ev["name"], (0.0, 0))
        spans[ev["name"]] = (total + ev["dur"], count + 1)

    print(f"{path}: {len(events)} events, {len(spans)} span names")
    if spans:
        width = max(len(n) for n in spans)
        print(
            f"\n{'span':<{width}}  {'total_ms':>10}  {'count':>8}  "
            f"{'mean_us':>9}"
        )
        for name in sorted(
            spans, key=lambda n: spans[n][0], reverse=True
        ):
            total, count = spans[name]
            print(
                f"{name:<{width}}  {total / 1000.0:>10.2f}  "
                f"{count:>8}  {total / count:>9.1f}"
            )
    for name in sorted(instants):
        print(f"instant {name}: {instants[name]}")

    iter_total = spans.get("engine.iteration", (0.0, 0))[0]
    stage_total = sum(spans.get(s, (0.0, 0))[0] for s in ENGINE_STAGES)
    if iter_total > 0:
        coverage = stage_total / iter_total
        print(
            f"\nengine stage coverage: {coverage:.1%} of "
            f"engine.iteration time "
            f"({stage_total / 1000.0:.2f} / {iter_total / 1000.0:.2f} ms)"
        )
        if check_coverage is not None and coverage < check_coverage:
            fail(
                f"stage spans cover {coverage:.1%} of engine time, "
                f"below the required {check_coverage:.0%}"
            )
    elif check_coverage is not None:
        fail(f"{path}: no engine.iteration spans to check coverage of")
    return 0


def validate_metrics_object(path, lineno, metrics):
    if not isinstance(metrics, dict):
        fail(f"{path}:{lineno}: 'metrics' is not an object")
    for name, value in metrics.items():
        if isinstance(value, (int, float)):
            continue
        if isinstance(value, dict):
            for key in ("count", "sum", "min", "max", "buckets"):
                if key not in value:
                    fail(
                        f"{path}:{lineno}: histogram {name!r} "
                        f"missing '{key}'"
                    )
            if not isinstance(value["buckets"], dict):
                fail(
                    f"{path}:{lineno}: histogram {name!r} buckets "
                    f"is not an object"
                )
            continue
        fail(
            f"{path}:{lineno}: metric {name!r} is neither a number "
            f"nor a histogram object"
        )


def summarize_fastpath(metrics):
    """Print the ISS fast-path effectiveness counters (decode cache +
    superblock) from a metrics object, when the run emitted them."""
    hit = metrics.get("engine.decode_cache.hit")
    miss = metrics.get("engine.decode_cache.miss")
    inval = metrics.get("engine.decode_cache.invalidate")
    if isinstance(hit, (int, float)) and isinstance(miss, (int, float)):
        lookups = hit + miss
        rate = hit / lookups if lookups else 0.0
        print(
            f"decode cache: {hit:.0f} hit / {miss:.0f} miss "
            f"({rate:.1%} hit rate), "
            f"{inval if isinstance(inval, (int, float)) else 0:.0f} "
            f"invalidated"
        )
    entered = metrics.get("engine.superblock.entered")
    side = metrics.get("engine.superblock.side_exit")
    if isinstance(entered, (int, float)) and isinstance(
        side, (int, float)
    ):
        rate = side / entered if entered else 0.0
        print(
            f"superblock: {entered:.0f} entered, {side:.0f} side "
            f"exits ({rate:.1%})"
        )


BARRIER_COUNTERS = (
    "fleet.barrier.merge_ns",
    "fleet.barrier.reduce_ns",
    "fleet.barrier.exchange_ns",
    "fleet.barrier.io_overlap_ns",
)


def validate_barrier_counters(path, lineno, metrics, prev):
    """Check the fleet epoch-barrier phase counters when present;
    returns the line's values for cross-line monotonicity tracking.

    The orchestrator registers all four at construction, so a line
    carrying some but not all of them means the stream mixes
    incompatible runs (or the emitter dropped counters)."""
    present = [n for n in BARRIER_COUNTERS if n in metrics]
    if not present:
        return prev
    missing = [n for n in BARRIER_COUNTERS if n not in metrics]
    if missing:
        fail(
            f"{path}:{lineno}: fleet barrier counters incomplete, "
            f"missing {missing}"
        )
    values = {}
    for name in BARRIER_COUNTERS:
        value = metrics[name]
        if isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            fail(
                f"{path}:{lineno}: barrier counter {name!r} is not "
                f"a number"
            )
        if value < 0:
            fail(
                f"{path}:{lineno}: barrier counter {name!r} is "
                f"negative ({value})"
            )
        # Counters accumulate host nanoseconds within a run; a drop
        # means the stream mixes runs or the writer lost state.
        if value < prev.get(name, 0):
            fail(
                f"{path}:{lineno}: barrier counter {name!r} went "
                f"backwards ({prev.get(name, 0)} -> {value})"
            )
        values[name] = value
    return values


def summarize_barrier(metrics):
    """Print the epoch-barrier phase breakdown (fleet runs only) from
    the final metrics object, when the run emitted it."""
    if not all(
        isinstance(metrics.get(n), (int, float))
        for n in BARRIER_COUNTERS
    ):
        return
    width = max(len(n) for n in BARRIER_COUNTERS)
    print("fleet barrier breakdown (cumulative host time):")
    for name in BARRIER_COUNTERS:
        print(f"  {name:<{width}}  {metrics[name] / 1e6:>10.3f} ms")


PROVENANCE_KEYS = ("first_hits", "last_new_t_sim", "plateau_sec")


def validate_provenance_object(path, lineno, prov, prev_first_hits):
    """Check an optional per-line provenance object; returns the
    line's first_hits for cross-line monotonicity tracking."""
    if not isinstance(prov, dict):
        fail(f"{path}:{lineno}: 'provenance' is not an object")
    for key in PROVENANCE_KEYS:
        value = prov.get(key)
        if not isinstance(value, (int, float)) or isinstance(
            value, bool
        ):
            fail(
                f"{path}:{lineno}: provenance missing/bad {key!r}"
            )
        if value < 0:
            fail(
                f"{path}:{lineno}: provenance {key!r} is negative "
                f"({value})"
            )
    unknown = set(prov) - set(PROVENANCE_KEYS)
    if unknown:
        fail(
            f"{path}:{lineno}: unknown provenance field(s) "
            f"{sorted(unknown)}"
        )
    # The ledger only grows within a run; a shrinking first-hit count
    # means the stream mixes runs or the writer lost state.
    if prov["first_hits"] < prev_first_hits:
        fail(
            f"{path}:{lineno}: provenance first_hits went backwards "
            f"({prev_first_hits} -> {prov['first_hits']})"
        )
    return prov["first_hits"]


def validate_jsonl(path, min_lines):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read stats file {path}: {e}")

    prev = {"t_sim": -1.0, "t_host": -1.0, "epoch": -1}
    prev_first_hits = 0
    prev_barrier = {}
    count = 0
    provenance_lines = 0
    last_metrics = None
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            fail(f"{path}:{lineno}: blank line in JSONL stream")
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: malformed JSON: {e}")
        if not isinstance(doc, dict):
            fail(f"{path}:{lineno}: line is not a JSON object")
        if doc.get("schema") != "turbofuzz.metrics.v1":
            fail(
                f"{path}:{lineno}: unexpected schema "
                f"{doc.get('schema')!r}"
            )
        for key, kind in (
            ("t_sim", (int, float)),
            ("t_host", (int, float)),
            ("epoch", int),
        ):
            if not isinstance(doc.get(key), kind):
                fail(f"{path}:{lineno}: missing/bad '{key}'")
            if doc[key] < prev[key]:
                fail(
                    f"{path}:{lineno}: '{key}' went backwards "
                    f"({prev[key]} -> {doc[key]})"
                )
        validate_metrics_object(path, lineno, doc.get("metrics"))
        last_metrics = doc["metrics"]
        prev_barrier = validate_barrier_counters(
            path, lineno, last_metrics, prev_barrier
        )
        if "provenance" in doc:
            prev_first_hits = validate_provenance_object(
                path, lineno, doc["provenance"], prev_first_hits
            )
            provenance_lines += 1
        prev = {k: doc[k] for k in ("t_sim", "t_host", "epoch")}
        count += 1

    if count < min_lines:
        fail(
            f"{path}: only {count} stats line(s), expected at least "
            f"{min_lines}"
        )
    suffix = (
        f" ({provenance_lines} with provenance)"
        if provenance_lines
        else ""
    )
    print(f"{path}: {count} valid turbofuzz.metrics.v1 lines{suffix}")
    if last_metrics:
        summarize_fastpath(last_metrics)
        summarize_barrier(last_metrics)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="trace JSON or stats JSONL file")
    parser.add_argument(
        "--jsonl",
        action="store_true",
        help="validate a --stats-file JSONL stream instead of a trace",
    )
    parser.add_argument(
        "--check-coverage",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail unless engine stage spans cover >= FRAC of "
        "engine.iteration time (e.g. 0.95)",
    )
    parser.add_argument(
        "--min-lines",
        type=int,
        default=1,
        help="minimum JSONL lines required in --jsonl mode (default 1)",
    )
    args = parser.parse_args()

    if args.jsonl:
        return validate_jsonl(args.file, args.min_lines)
    return summarize_trace(args.file, args.check_coverage)


if __name__ == "__main__":
    sys.exit(main())
